package nvm

import "encoding/binary"

// Accessor provides typed little-endian access to a device region.  It is the
// load/store layer every higher-level structure (pools, vectors, hash tables)
// goes through, so all of their traffic is visible to the cost model.
//
// Accessor methods panic on out-of-range access: region bounds are computed
// by allocators, so a violation is a program bug, not an I/O condition —
// the same stance the standard library takes for slice indexing.
//
// When the device is the built-in simulator (the only implementation in this
// repository), every operation takes a direct fast path: the region bounds
// are validated once here — the accessor's region is a subrange of the
// device by construction, so the device's own range check is redundant — and
// bytes are decoded and encoded straight against the simulator's volatile
// image, with no intermediate buffer.  Charging is identical to the
// ReadAt/WriteAt path; only host-side work differs.
type Accessor struct {
	dev  Device
	sim  *SimDevice // non-nil when dev is the built-in simulator
	base int64
	size int64
}

// NewAccessor returns an accessor for the n bytes of dev starting at base.
func NewAccessor(dev Device, base, n int64) Accessor {
	if base < 0 || n < 0 || base+n > dev.Size() {
		panic("nvm: accessor out of device range")
	}
	sim, _ := dev.(*SimDevice)
	return Accessor{dev: dev, sim: sim, base: base, size: n}
}

// Device returns the underlying device.
func (a Accessor) Device() Device { return a.dev }

// Base returns the region's absolute device offset.
func (a Accessor) Base() int64 { return a.base }

// Size returns the region length in bytes.
func (a Accessor) Size() int64 { return a.size }

// Slice returns an accessor for the sub-region [off, off+n).
func (a Accessor) Slice(off, n int64) Accessor {
	if off < 0 || n < 0 || off+n > a.size {
		panic("nvm: slice out of region range")
	}
	return Accessor{dev: a.dev, sim: a.sim, base: a.base + off, size: n}
}

func (a Accessor) must(err error) {
	if err != nil {
		panic("nvm: " + err.Error())
	}
}

// ReadBytes copies len(p) bytes at region offset off into p.
func (a Accessor) ReadBytes(off int64, p []byte) {
	n := int64(len(p))
	a.check(off, n)
	if a.sim != nil {
		copy(p, a.sim.accessRead(a.base+off, n))
		return
	}
	_, err := a.dev.ReadAt(p, a.base+off)
	a.must(err)
}

// WriteBytes copies p to region offset off.
func (a Accessor) WriteBytes(off int64, p []byte) {
	n := int64(len(p))
	a.check(off, n)
	if a.sim != nil {
		copy(a.sim.accessWrite(a.base+off, n), p)
		return
	}
	_, err := a.dev.WriteAt(p, a.base+off)
	a.must(err)
}

// ReadView charges a read of [off, off+n) and returns the bytes with zero
// copy when the device is the simulator (a freshly copied buffer otherwise).
// The view aliases device memory: it is valid only until the next write to
// the device and must not be mutated.  Scans that only inspect bytes (hash
// table status runs, token streams) use it to avoid staging buffers.
func (a Accessor) ReadView(off, n int64) []byte {
	a.check(off, n)
	if a.sim != nil {
		return a.sim.accessRead(a.base+off, n)
	}
	p := make([]byte, n)
	_, err := a.dev.ReadAt(p, a.base+off)
	a.must(err)
	return p
}

// Uint32 reads a little-endian uint32 at off.
func (a Accessor) Uint32(off int64) uint32 {
	if a.sim != nil {
		a.check(off, 4)
		return binary.LittleEndian.Uint32(a.sim.accessRead(a.base+off, 4))
	}
	var b [4]byte
	a.ReadBytes(off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// PutUint32 writes v at off.
func (a Accessor) PutUint32(off int64, v uint32) {
	if a.sim != nil {
		a.check(off, 4)
		binary.LittleEndian.PutUint32(a.sim.accessWrite(a.base+off, 4), v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	a.WriteBytes(off, b[:])
}

// Uint64 reads a little-endian uint64 at off.
func (a Accessor) Uint64(off int64) uint64 {
	if a.sim != nil {
		a.check(off, 8)
		return binary.LittleEndian.Uint64(a.sim.accessRead(a.base+off, 8))
	}
	var b [8]byte
	a.ReadBytes(off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// PutUint64 writes v at off.
func (a Accessor) PutUint64(off int64, v uint64) {
	if a.sim != nil {
		a.check(off, 8)
		binary.LittleEndian.PutUint64(a.sim.accessWrite(a.base+off, 8), v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	a.WriteBytes(off, b[:])
}

// Byte reads the byte at off.
func (a Accessor) Byte(off int64) byte {
	if a.sim != nil {
		a.check(off, 1)
		return a.sim.accessRead(a.base+off, 1)[0]
	}
	var b [1]byte
	a.ReadBytes(off, b[:])
	return b[0]
}

// PutByte writes v at off.
func (a Accessor) PutByte(off int64, v byte) {
	if a.sim != nil {
		a.check(off, 1)
		a.sim.accessWrite(a.base+off, 1)[0] = v
		return
	}
	b := [1]byte{v}
	a.WriteBytes(off, b[:])
}

// ReadU32s reads len(dst) little-endian uint32 values starting at off in one
// device read — charge-identical to ReadBytes over the same range, so
// sequential layouts pay sequential cost.
func (a Accessor) ReadU32s(off int64, dst []uint32) {
	n := int64(len(dst)) * 4
	a.check(off, n)
	if a.sim != nil {
		src := a.sim.accessRead(a.base+off, n)
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint32(src[i*4:])
		}
		return
	}
	buf := make([]byte, n)
	_, err := a.dev.ReadAt(buf, a.base+off)
	a.must(err)
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
}

// WriteU32s writes src as consecutive little-endian uint32 values at off in
// one device write — charge-identical to WriteBytes over the same range.
func (a Accessor) WriteU32s(off int64, src []uint32) {
	n := int64(len(src)) * 4
	a.check(off, n)
	if a.sim != nil {
		dst := a.sim.accessWrite(a.base+off, n)
		for i, v := range src {
			binary.LittleEndian.PutUint32(dst[i*4:], v)
		}
		return
	}
	buf := make([]byte, n)
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[i*4:], v)
	}
	_, err := a.dev.WriteAt(buf, a.base+off)
	a.must(err)
}

// ReadU64s reads len(dst) little-endian uint64 values starting at off in one
// device read — charge-identical to ReadBytes over the same range.
func (a Accessor) ReadU64s(off int64, dst []uint64) {
	n := int64(len(dst)) * 8
	a.check(off, n)
	if a.sim != nil {
		src := a.sim.accessRead(a.base+off, n)
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(src[i*8:])
		}
		return
	}
	buf := make([]byte, n)
	_, err := a.dev.ReadAt(buf, a.base+off)
	a.must(err)
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
}

// WriteU64s writes src as consecutive little-endian uint64 values at off in
// one device write — charge-identical to WriteBytes over the same range.
func (a Accessor) WriteU64s(off int64, src []uint64) {
	n := int64(len(src)) * 8
	a.check(off, n)
	if a.sim != nil {
		dst := a.sim.accessWrite(a.base+off, n)
		for i, v := range src {
			binary.LittleEndian.PutUint64(dst[i*8:], v)
		}
		return
	}
	buf := make([]byte, n)
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	_, err := a.dev.WriteAt(buf, a.base+off)
	a.must(err)
}

// Fill writes n copies of v at off in one device write — charge-identical to
// WriteBytes of an n-byte buffer.  Zeroing loops (pool allocation, table
// resets) use it to avoid materializing the fill pattern.
func (a Accessor) Fill(off, n int64, v byte) {
	a.check(off, n)
	if a.sim != nil {
		dst := a.sim.accessWrite(a.base+off, n)
		if v == 0 {
			clear(dst)
		} else {
			for i := range dst {
				dst[i] = v
			}
		}
		return
	}
	buf := make([]byte, n)
	if v != 0 {
		for i := range buf {
			buf[i] = v
		}
	}
	_, err := a.dev.WriteAt(buf, a.base+off)
	a.must(err)
}

// FillU64 writes count copies of the little-endian uint64 v at off in one
// device write — charge-identical to WriteBytes of the same 8*count bytes.
func (a Accessor) FillU64(off, count int64, v uint64) {
	n := count * 8
	a.check(off, n)
	if v == 0 {
		a.Fill(off, n, 0)
		return
	}
	if a.sim != nil {
		dst := a.sim.accessWrite(a.base+off, n)
		fillPattern64(dst, v)
		return
	}
	buf := make([]byte, n)
	fillPattern64(buf, v)
	_, err := a.dev.WriteAt(buf, a.base+off)
	a.must(err)
}

// fillPattern64 tiles b (whose length is a multiple of 8) with v, doubling
// the initialized prefix each round.
func fillPattern64(b []byte, v uint64) {
	if len(b) == 0 {
		return
	}
	binary.LittleEndian.PutUint64(b, v)
	for done := 8; done < len(b); done *= 2 {
		copy(b[done:], b[:done])
	}
}

// CopyWithin copies n bytes from region offset srcOff to dstOff, equivalent
// to (and charge-identical to) ReadBytes(srcOff) followed by
// WriteBytes(dstOff).  Overlapping ranges behave like Go's copy.
func (a Accessor) CopyWithin(dstOff, srcOff, n int64) {
	a.check(srcOff, n)
	a.check(dstOff, n)
	if a.sim != nil {
		src := a.sim.accessRead(a.base+srcOff, n)
		dst := a.sim.accessWrite(a.base+dstOff, n)
		copy(dst, src)
		return
	}
	buf := make([]byte, n)
	_, err := a.dev.ReadAt(buf, a.base+srcOff)
	a.must(err)
	_, err = a.dev.WriteAt(buf, a.base+dstOff)
	a.must(err)
}

// Uint32s reads n little-endian uint32 values starting at off into dst,
// which must have length >= n.  It issues one device read, so sequential
// layouts pay sequential cost.
func (a Accessor) Uint32s(off int64, dst []uint32) { a.ReadU32s(off, dst) }

// PutUint32s writes src as consecutive little-endian uint32 values at off in
// one device write.
func (a Accessor) PutUint32s(off int64, src []uint32) { a.WriteU32s(off, src) }

// Flush persists the byte range [off, off+n) of the region.
func (a Accessor) Flush(off, n int64) error {
	a.check(off, n)
	return a.dev.Flush(a.base+off, n)
}

// FlushAll persists the whole region.
func (a Accessor) FlushAll() error { return a.dev.Flush(a.base, a.size) }

func (a Accessor) check(off, n int64) {
	if off < 0 || n < 0 || off+n > a.size {
		panic("nvm: access out of region range")
	}
}
