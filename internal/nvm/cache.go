package nvm

// deviceCache simulates the small cache that sits in front of the media: the
// on-DIMM XPBuffer for Optane, a last-level-cache slice for DRAM, the OS page
// cache for block devices.  It is a set-associative tag array with LRU
// replacement inside each set.  Only tags are kept — the data itself lives in
// the device's backing buffer — so the cache purely decides whether an access
// is charged hit or miss cost.  Like the device that owns it, it is
// unsynchronized: one goroutine per device.
type deviceCache struct {
	sets  []cacheSet
	nsets int64
	ways  int
	lineG int64 // line size = media granule
}

type cacheSet struct {
	tags []int64 // granule numbers, -1 = empty; index 0 is MRU
}

// newDeviceCache builds a cache of capacity bytes with the given
// associativity over granule-sized lines.  Returns nil when capacity is too
// small for a single set, which callers treat as "no cache".
func newDeviceCache(capacity, granule int64, ways int) *deviceCache {
	if ways <= 0 {
		ways = 8
	}
	lines := capacity / granule
	nsets := lines / int64(ways)
	if nsets <= 0 {
		return nil
	}
	c := &deviceCache{
		sets:  make([]cacheSet, nsets),
		nsets: nsets,
		ways:  ways,
		lineG: granule,
	}
	for i := range c.sets {
		tags := make([]int64, ways)
		for j := range tags {
			tags[j] = -1
		}
		c.sets[i].tags = tags
	}
	return c
}

// access looks up granule g, inserting it on a miss.  It reports whether the
// access hit.
func (c *deviceCache) access(g int64) bool {
	set := &c.sets[g%c.nsets]
	for i, t := range set.tags {
		if t == g {
			// Move to front (MRU).
			copy(set.tags[1:i+1], set.tags[:i])
			set.tags[0] = g
			return true
		}
	}
	// Miss: evict LRU (last slot), insert at front.
	copy(set.tags[1:], set.tags[:len(set.tags)-1])
	set.tags[0] = g
	return false
}

// invalidate drops granule g if present.  Used when a flush pushes a line out
// toward media on write-through block devices.
func (c *deviceCache) invalidate(g int64) {
	set := &c.sets[g%c.nsets]
	for i, t := range set.tags {
		if t == g {
			copy(set.tags[i:], set.tags[i+1:])
			set.tags[len(set.tags)-1] = -1
			return
		}
	}
}

// reset empties the cache.
func (c *deviceCache) reset() {
	for i := range c.sets {
		for j := range c.sets[i].tags {
			c.sets[i].tags[j] = -1
		}
	}
}
