// Package datagen generates the synthetic corpora standing in for the
// paper's four datasets (Table I): Yelp COVID-19 reviews (A), the NSF
// Research Award Abstracts' many small files (B), four Wikipedia web
// documents (C), and a large Wikipedia dump (D).  The real datasets are
// multi-gigabyte downloads; these generators reproduce the properties that
// drive TADOC behaviour — file-count shape, Zipfian vocabulary skew, and
// inter-file phrase redundancy — at roughly 1/100 scale, seeded for
// determinism.  EXPERIMENTS.md records the scaled parameters beside every
// result.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/text-analytics/ntadoc/internal/dict"
)

// Spec describes one synthetic corpus.  Text is drawn from a two-level
// shared pool — phrases (word sequences) composed into paragraphs (phrase
// sequences) — which yields the nested repetition grammar compression
// exploits in real text; the paper's corpora compress to roughly a tenth of
// their size (90.8% storage reduction across the TADOC line of work).
type Spec struct {
	Name       string
	Seed       int64
	Files      int     // number of documents
	TokensPer  int     // mean tokens per document
	Vocab      int     // vocabulary size
	ZipfS      float64 // Zipf skew parameter (>1)
	Phrases    int     // size of the shared phrase pool
	PhraseLen  int     // mean phrase length
	PhraseProb float64 // probability a draw emits shared content, not a word
	// Locality is the fraction of the shared pools visible to one file
	// (0 or 1 = every file sees everything).  Real corpora are locally
	// redundant: a Wikipedia article repeats its own phrasing far more
	// than other articles', so each file draws mostly from its own window
	// of the pool, plus a small common "boilerplate" slice shared by all.
	Locality float64
}

// The four dataset analogues.  Scale factors versus Table I are recorded in
// EXPERIMENTS.md; shapes (file-count ratios, vocabulary skew, redundancy)
// follow the originals: A is one medium file, B is very many small files,
// C is four large documents, D is the biggest corpus over the widest
// vocabulary.
var (
	// DatasetA mimics the Yelp COVID-19 dataset: a single aggregate file of
	// short reviews with heavy phrase reuse.
	DatasetA = Spec{
		Name: "A", Seed: 0xA, Files: 1, TokensPer: 60_000, Vocab: 2_400,
		ZipfS: 1.25, Phrases: 300, PhraseLen: 7, PhraseProb: 0.85,
	}
	// DatasetB mimics NSFRAA: a large number of small abstracts sharing
	// boilerplate.
	DatasetB = Spec{
		Name: "B", Seed: 0xB, Files: 1_600, TokensPer: 90, Vocab: 18_000,
		ZipfS: 1.2, Phrases: 500, PhraseLen: 8, PhraseProb: 0.85,
		// Abstracts share boilerplate heavily: full pool visibility.
	}
	// DatasetC mimics four Wikipedia web documents.
	DatasetC = Spec{
		Name: "C", Seed: 0xC, Files: 4, TokensPer: 120_000, Vocab: 60_000,
		ZipfS: 1.18, Phrases: 1_200, PhraseLen: 7, PhraseProb: 0.82,
		Locality: 0.35,
	}
	// DatasetD mimics the large Wikipedia dump: the biggest corpus, widest
	// vocabulary, moderate redundancy.
	DatasetD = Spec{
		Name: "D", Seed: 0xD, Files: 96, TokensPer: 14_000, Vocab: 140_000,
		ZipfS: 1.15, Phrases: 2_200, PhraseLen: 7, PhraseProb: 0.8,
		Locality: 0.08,
	}
)

// Datasets lists the four analogues in the paper's order.
var Datasets = []Spec{DatasetA, DatasetB, DatasetC, DatasetD}

// Scaled returns a copy of s with document sizes and counts scaled by f
// (0 < f <= 1), for -short test runs and quick benchmarks.
func (s Spec) Scaled(f float64) Spec {
	if f <= 0 || f > 1 {
		return s
	}
	scale := func(n int, min int) int {
		v := int(float64(n) * f)
		if v < min {
			v = min
		}
		return v
	}
	s.Files = scale(s.Files, 1)
	s.TokensPer = scale(s.TokensPer, 16)
	s.Vocab = scale(s.Vocab, 64)
	s.Phrases = scale(s.Phrases, 16)
	return s
}

// TotalTokens returns the corpus size in tokens.
func (s Spec) TotalTokens() int64 { return int64(s.Files) * int64(s.TokensPer) }

// Generate produces the corpus as per-file token streams.  The vocabulary is
// drawn Zipf-skewed; draws emit shared paragraphs (sequences of shared
// phrases) or phrases most of the time, creating the nested repeated
// patterns Sequitur compresses into rules and the cross-file redundancy
// TADOC exploits between documents.
func (s Spec) Generate() [][]uint32 {
	r := rand.New(rand.NewSource(s.Seed))
	zipf := rand.NewZipf(r, s.ZipfS, 1.0, uint64(s.Vocab-1))

	phrases := make([][]uint32, s.Phrases)
	for i := range phrases {
		n := 3 + r.Intn(s.PhraseLen*2-2)
		p := make([]uint32, n)
		for j := range p {
			p[j] = uint32(zipf.Uint64())
		}
		phrases[i] = p
	}
	// Paragraphs reuse phrases, giving the grammar its nesting.
	paragraphs := make([][]uint32, s.Phrases/2+1)
	for i := range paragraphs {
		var para []uint32
		for n := 3 + r.Intn(6); n > 0; n-- {
			para = append(para, phrases[r.Intn(len(phrases))]...)
		}
		paragraphs[i] = para
	}

	// pick draws an index for file fi from a pool of size n: usually from
	// the file's own locality window, sometimes from the common
	// boilerplate slice at the pool's start.
	locality := s.Locality
	if locality <= 0 || locality >= 1 {
		locality = 1
	}
	pick := func(fi, n int) int {
		if locality == 1 || n < 8 {
			return r.Intn(n)
		}
		common := n / 10
		if common < 1 {
			common = 1
		}
		if r.Float64() < 0.2 {
			return r.Intn(common) // shared boilerplate
		}
		window := int(float64(n) * locality)
		if window < 1 {
			window = 1
		}
		start := (fi * 131) % n
		return (start + r.Intn(window)) % n
	}

	files := make([][]uint32, s.Files)
	for fi := range files {
		// Vary file sizes ±50% around the mean.
		target := s.TokensPer/2 + r.Intn(s.TokensPer)
		f := make([]uint32, 0, target+s.PhraseLen*16)
		for len(f) < target {
			switch roll := r.Float64(); {
			case roll < s.PhraseProb*0.6:
				f = append(f, paragraphs[pick(fi, len(paragraphs))]...)
			case roll < s.PhraseProb:
				f = append(f, phrases[pick(fi, len(phrases))]...)
			default:
				f = append(f, uint32(zipf.Uint64()))
			}
		}
		files[fi] = f[:target]
	}
	return files
}

// GenerateWithDict produces the corpus plus a dictionary whose words are
// synthetic but plausible ("w000123"-style stems with Zipfian lengths), so
// tasks that need word strings (sort) have real strings to order.
func (s Spec) GenerateWithDict() ([][]uint32, *dict.Dictionary) {
	files := s.Generate()
	d := dict.New()
	// Intern vocabulary in ID order so token IDs match dictionary IDs.
	maxID := uint32(0)
	for _, f := range files {
		for _, w := range f {
			if w > maxID {
				maxID = w
			}
		}
	}
	r := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	for i := uint32(0); i <= maxID; i++ {
		d.Intern(syntheticWord(r, i))
	}
	return files, d
}

// syntheticWord builds a deterministic pseudo-word for ID i.
func syntheticWord(r *rand.Rand, i uint32) string {
	const letters = "etaoinshrdlucmfwypvbgkjqxz"
	var b strings.Builder
	n := 3 + r.Intn(7)
	v := i*2654435761 + 0x9e3779b9
	for j := 0; j < n; j++ {
		b.WriteByte(letters[v%uint32(len(letters))])
		v = v*1664525 + 1013904223
	}
	// Guarantee uniqueness across IDs.
	fmt.Fprintf(&b, "%d", i)
	return b.String()
}
