package datagen

import (
	"testing"

	"github.com/text-analytics/ntadoc/internal/sequitur"
)

func TestSpecsShapeMatchesPaper(t *testing.T) {
	// Table I shape: B has by far the most files; D is the largest corpus
	// with the widest vocabulary; A is the smallest.
	if !(DatasetB.Files > 100*DatasetC.Files && DatasetB.Files > 100*DatasetA.Files) {
		t.Error("dataset B must have the many-small-files shape")
	}
	if !(DatasetD.TotalTokens() > DatasetC.TotalTokens() &&
		DatasetC.TotalTokens() > DatasetA.TotalTokens()) {
		t.Error("size ordering A < C < D violated")
	}
	if !(DatasetD.Vocab > DatasetC.Vocab && DatasetC.Vocab > DatasetB.Vocab) {
		t.Error("vocabulary ordering violated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := DatasetA.Scaled(0.02)
	a := spec.Generate()
	b := spec.Generate()
	if len(a) != len(b) {
		t.Fatalf("file counts differ")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("file %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("file %d token %d differs", i, j)
			}
		}
	}
}

func TestGenerateRespectsSpec(t *testing.T) {
	spec := DatasetB.Scaled(0.05)
	files := spec.Generate()
	if len(files) != spec.Files {
		t.Fatalf("files = %d, want %d", len(files), spec.Files)
	}
	for i, f := range files {
		if len(f) == 0 {
			t.Errorf("file %d empty", i)
		}
		for _, w := range f {
			if int(w) >= spec.Vocab {
				t.Fatalf("token %d beyond vocab %d", w, spec.Vocab)
			}
		}
	}
}

func TestGenerateWithDictCoversTokens(t *testing.T) {
	spec := DatasetA.Scaled(0.01)
	files, d := spec.GenerateWithDict()
	for _, f := range files {
		for _, w := range f {
			if int(w) >= d.Len() {
				t.Fatalf("token %d beyond dictionary %d", w, d.Len())
			}
		}
	}
	// Dictionary words must be unique (Intern would have merged dupes and
	// broken the ID mapping).
	seen := map[string]bool{}
	for _, w := range d.Words() {
		if seen[w] {
			t.Fatalf("duplicate dictionary word %q", w)
		}
		seen[w] = true
	}
}

func TestCorporaCompressWell(t *testing.T) {
	// The generators must produce the redundancy TADOC depends on: the
	// grammar body must be much smaller than the input.
	if testing.Short() {
		t.Skip("compression check on full-scale specs is slow")
	}
	// Dataset B needs enough scale that its small files retain shared
	// boilerplate; at full scale both compress to ~0.3 (measured).
	for _, spec := range []Spec{DatasetA.Scaled(0.05), DatasetB.Scaled(0.25)} {
		files := spec.Generate()
		var total int64
		for _, f := range files {
			total += int64(len(f))
		}
		g, err := sequitur.Infer(files, uint32(spec.Vocab))
		if err != nil {
			t.Fatalf("%s: Infer: %v", spec.Name, err)
		}
		st := g.ComputeStats()
		if st.Expanded != total {
			t.Errorf("%s: expanded %d != input %d", spec.Name, st.Expanded, total)
		}
		ratio := float64(st.BodySymbols) / float64(total)
		if ratio > 0.6 {
			t.Errorf("%s: weak compression: body/input = %.2f", spec.Name, ratio)
		}
	}
}

func TestScaledBounds(t *testing.T) {
	s := DatasetD.Scaled(0.001)
	if s.Files < 1 || s.TokensPer < 16 || s.Vocab < 64 {
		t.Errorf("scaled spec below minimums: %+v", s)
	}
	same := DatasetD.Scaled(0)
	if same != DatasetD {
		t.Errorf("invalid factor must return the original spec")
	}
	same = DatasetD.Scaled(2)
	if same != DatasetD {
		t.Errorf("factor > 1 must return the original spec")
	}
}
