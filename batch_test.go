package ntadoc

import (
	"reflect"
	"testing"
)

// TestBatchSpecGoldenSignatures pins the canonical signature strings: the
// daemon's coalescer and result cache key on them, so a silent change here
// would strand cached results and split identical in-flight requests.
func TestBatchSpecGoldenSignatures(t *testing.T) {
	cases := []struct {
		name  string
		tasks []Task
		k     int
		want  string
	}{
		{"empty", nil, 0, ""},
		{"empty with k", nil, 5, ""},
		{"single", []Task{TaskWordCount}, 0, "wordcount"},
		{"all six", AllTasks, 0,
			"wordcount+sort+termvector+invertedindex+seqcount+rankedindex"},
		{"all six custom k", AllTasks, 5,
			"wordcount+sort+termvector+invertedindex+seqcount+rankedindex@k=5"},
		{"k without termvector dropped", []Task{TaskSort, TaskWordCount}, 7, "wordcount+sort"},
		{"default k elided", []Task{TaskTermVectors}, 10, "termvector"},
		{"zero k elided", []Task{TaskTermVectors}, 0, "termvector"},
		{"negative k elided", []Task{TaskTermVectors}, -3, "termvector"},
		{"custom k kept", []Task{TaskTermVectors}, 3, "termvector@k=3"},
	}
	for _, tc := range cases {
		if got := NewBatchSpec(tc.tasks, tc.k).Signature(); got != tc.want {
			t.Errorf("%s: Signature() = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestBatchSpecPermutationStability feeds the same task set in several
// orders, with duplicates, and with differing term-vector lengths that
// normalize identically: every variant must canonicalize to one spec.
func TestBatchSpecPermutationStability(t *testing.T) {
	canonical := NewBatchSpec([]Task{TaskWordCount, TaskTermVectors, TaskSort}, 5)
	variants := []struct {
		name  string
		tasks []Task
		k     int
	}{
		{"sorted", []Task{TaskWordCount, TaskSort, TaskTermVectors}, 5},
		{"reversed", []Task{TaskTermVectors, TaskSort, TaskWordCount}, 5},
		{"rotated", []Task{TaskSort, TaskTermVectors, TaskWordCount}, 5},
		{"duplicate head", []Task{TaskWordCount, TaskWordCount, TaskSort, TaskTermVectors}, 5},
		{"duplicate termvector", []Task{TaskTermVectors, TaskSort, TaskTermVectors, TaskWordCount}, 5},
		{"all duplicated", []Task{TaskSort, TaskTermVectors, TaskWordCount,
			TaskWordCount, TaskTermVectors, TaskSort}, 5},
	}
	for _, v := range variants {
		got := NewBatchSpec(v.tasks, v.k)
		if got.Signature() != canonical.Signature() {
			t.Errorf("%s: Signature() = %q, want %q", v.name, got.Signature(), canonical.Signature())
		}
		if !reflect.DeepEqual(got.Tasks(), canonical.Tasks()) {
			t.Errorf("%s: Tasks() = %v, want %v", v.name, got.Tasks(), canonical.Tasks())
		}
		if got.TermVectorK() != canonical.TermVectorK() {
			t.Errorf("%s: TermVectorK() = %d, want %d", v.name, got.TermVectorK(), canonical.TermVectorK())
		}
	}

	// The same set without term vectors ignores k entirely: any k value
	// yields the identical spec (duplicate requests differing only in a
	// meaningless k coalesce to one flight).
	for _, k := range []int{-1, 0, 3, 10, 99} {
		got := NewBatchSpec([]Task{TaskSort, TaskWordCount, TaskSort}, k)
		if got.Signature() != "wordcount+sort" {
			t.Errorf("k=%d without termvector: Signature() = %q, want %q", k, got.Signature(), "wordcount+sort")
		}
	}
}

// TestBatchSpecEmpty checks the zero batch: no tasks, no sequences, empty
// signature, and ParseBatchSpec of an empty name list produces the same.
func TestBatchSpecEmpty(t *testing.T) {
	empty := NewBatchSpec(nil, 9)
	if n := len(empty.Tasks()); n != 0 {
		t.Errorf("empty spec has %d tasks", n)
	}
	if empty.NeedsSequences() {
		t.Error("empty spec claims to need sequences")
	}
	if sig := empty.Signature(); sig != "" {
		t.Errorf("empty spec signature = %q", sig)
	}
	parsed, err := ParseBatchSpec(nil, 9)
	if err != nil {
		t.Fatalf("ParseBatchSpec(nil): %v", err)
	}
	if parsed.Signature() != empty.Signature() || parsed.TermVectorK() != empty.TermVectorK() {
		t.Errorf("ParseBatchSpec(nil) = %+v, want %+v", parsed, empty)
	}
}

// TestParseBatchSpecNormalizes checks the name-list front door applies the
// same canonicalization (whitespace, duplicates, ordering) and rejects
// unknown names.
func TestParseBatchSpecNormalizes(t *testing.T) {
	spec, err := ParseBatchSpec([]string{" sort", "wordcount ", "sort", "termvector"}, 5)
	if err != nil {
		t.Fatalf("ParseBatchSpec: %v", err)
	}
	if want := "wordcount+sort+termvector@k=5"; spec.Signature() != want {
		t.Errorf("Signature() = %q, want %q", spec.Signature(), want)
	}
	if _, err := ParseBatchSpec([]string{"wordcount", "bogus"}, 0); err == nil {
		t.Error("ParseBatchSpec accepted unknown task name")
	}
}
