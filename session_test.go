package ntadoc

import (
	"context"
	"reflect"
	"testing"
)

func TestBatchSpecCanonicalization(t *testing.T) {
	a := NewBatchSpec([]Task{TaskSort, TaskWordCount, TaskSort}, 0)
	b := NewBatchSpec([]Task{TaskWordCount, TaskSort}, 0)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("order/dup-insensitive canonicalization failed: %v vs %v", a, b)
	}
	if got, want := a.Signature(), "wordcount+sort"; got != want {
		t.Errorf("Signature = %q, want %q", got, want)
	}

	p, err := ParseBatchSpec([]string{" sort ", "wordcount"}, 0)
	if err != nil {
		t.Fatalf("ParseBatchSpec: %v", err)
	}
	if p.Signature() != a.Signature() {
		t.Errorf("parsed signature %q != constructed %q", p.Signature(), a.Signature())
	}
	if _, err := ParseBatchSpec([]string{"nosuch"}, 0); err == nil {
		t.Error("ParseBatchSpec accepted an unknown task")
	}

	// K only matters when term vectors are in the batch and non-default.
	if s := NewBatchSpec([]Task{TaskWordCount}, 7); s.TermVectorK() != 0 {
		t.Errorf("K retained without termvector: %d", s.TermVectorK())
	}
	s := NewBatchSpec([]Task{TaskTermVectors}, 7)
	if s.TermVectorK() != 7 {
		t.Errorf("K dropped: %d", s.TermVectorK())
	}
	if got, want := s.Signature(), "termvector@k=7"; got != want {
		t.Errorf("Signature = %q, want %q", got, want)
	}
	if s.NeedsSequences() {
		t.Error("termvector should not need sequences")
	}
	if !NewBatchSpec([]Task{TaskSequenceCount}, 0).NeedsSequences() {
		t.Error("seqcount needs sequences")
	}
}

// TestQuerySessionMatchesEngine checks public sessions return results
// bit-identical to the engine task path, for unsharded and sharded engines,
// including a parameterized term-vector length.
func TestQuerySessionMatchesEngine(t *testing.T) {
	shard3, err := CompressSharded(shardDocs, 3)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	for _, tc := range []struct {
		name string
		a    *Archive
	}{
		{"unsharded", mustCompress(t, shardDocs)},
		{"sharded", shard3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(tc.a, Options{})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			defer eng.Close()
			spec := NewBatchSpec(AllTasks, 3)
			want, err := eng.RunSpec(spec)
			if err != nil {
				t.Fatalf("RunSpec: %v", err)
			}
			if len(want.TermVectors) > 0 && len(want.TermVectors[0]) > 3 {
				t.Fatalf("term vectors not truncated to k=3: %d", len(want.TermVectors[0]))
			}
			s, err := eng.NewSession()
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			got, err := s.RunSpec(context.Background(), spec)
			if err != nil {
				t.Fatalf("session RunSpec: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("session results differ from engine task path")
			}
		})
	}

	// DRAM engines have no sessions.
	eng, err := NewEngine(mustCompress(t, shardDocs), Options{Medium: MediumDRAM})
	if err != nil {
		t.Fatalf("NewEngine(DRAM): %v", err)
	}
	defer eng.Close()
	if _, err := eng.NewSession(); err == nil {
		t.Error("NewSession on DRAM engine should fail")
	}
}

func mustCompress(t *testing.T, docs []Document) *Archive {
	t.Helper()
	a, err := Compress(docs)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	return a
}
