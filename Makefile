GO ?= go

.PHONY: all build vet test race bench-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with real concurrency: the parallel
# experiment harness and the device simulator it drives.
race:
	$(GO) test -race ./internal/harness/ ./internal/nvm/

# One iteration of every benchmark, as a compile-and-run smoke test.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

check: build vet test race bench-smoke
