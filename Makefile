GO ?= go

# Seconds of coverage-guided fuzzing per target in fuzz-smoke.
FUZZTIME ?= 20s

.PHONY: all build vet staticcheck lint test race bench-smoke errcheck crashcheck failovercheck ingestcheck fuzz-smoke e2e loadgen-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet.  CI installs staticcheck; locally the target
# skips with a notice when the binary is absent rather than failing the
# whole gate on a missing tool.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo 'staticcheck: not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)'; \
	fi

test:
	$(GO) test ./...

# Race-detector pass over every package: concurrent query sessions, the
# parallel experiment harness, and the device simulator they drive.
race:
	$(GO) test -race ./...

# One iteration of every benchmark, as a compile-and-run smoke test.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# ntalint: the repo's own analyzer suite (internal/lint) — persistcheck
# (dropped persistence errors), determcheck (wall-clock / unseeded rand /
# order-sensitive map iteration in modeled-result packages), publishcheck
# (body-before-header persistence ordering), guardcheck (`guarded by <mu>`
# annotations).  See DESIGN.md "Enforced invariants".
#
# The binary also speaks the go vet vettool protocol, which runs the same
# checks under vet's per-package caching:
#
#	$(GO) build -o /tmp/ntalint ./cmd/ntalint
#	$(GO) vet -vettool=/tmp/ntalint ./...
lint:
	$(GO) run ./cmd/ntalint ./...

# errcheck used to be a line-regex grep for bare persistence-method calls; a
# multi-line call, an `_ =` assignment, or a call through an interface all
# slipped past it.  The name stays for muscle memory, but it now runs the
# type-aware analyzer that replaced the grep.
errcheck:
	$(GO) run ./cmd/ntalint -c persistcheck ./...

# Exhaustive crash-point exploration on the recorded small corpus: every
# flush/drain event of WordCount under both persistence strategies, the
# none/all extremes plus 3 seeded torn-write subsets per point.  The sampled
# version of the same exploration runs inside `make test` via
# internal/crashcheck.  Corpus and seeds are pinned here so runs reproduce.
crashcheck:
	$(GO) run ./cmd/crashcheck -task wordcount -persistence both \
		-points 0 -seeds 3 -seed 42 -files 2 -tokens 120 -vocab 40 -corpus-seed 7

# Sampled replication/failover matrix on a 3-way replicated engine: per
# sampled (shard, event) point the primary dies under sync and lag-bounded
# async shipping (failover must mask it bit-identically), the follower is
# torn and its frozen image recovered under seeded crash subsets, and a final
# async run checks the lag-bound recovery contract.  The sampled version runs
# inside `make test` via internal/crashcheck; seeds are pinned to reproduce.
failovercheck:
	$(GO) run ./cmd/crashcheck -failover -shards 3 -task wordcount \
		-persistence both -points 6 -seeds 3 -seed 42 -files 6 -tokens 120 \
		-vocab 40 -corpus-seed 7

# Exhaustive online-ingestion crash exploration: every flush/drain event of
# the live append stream (with a mid-stream compaction) under both
# persistence strategies.  Recovery must land on a batch boundary, keep
# every acknowledged append, serve the exact prefix result, and stay
# appendable.  The sampled version runs inside `make test` via
# internal/crashcheck; corpus and seeds are pinned here so runs reproduce.
ingestcheck:
	$(GO) run ./cmd/crashcheck -ingest -task wordcount -persistence both \
		-points 0 -seeds 3 -seed 42 -files 4 -tokens 120 -vocab 40 -corpus-seed 7

# A short coverage-guided run of every fuzz target (archive parsing, the
# compress/decompress round trip, op-log crash recovery).  Each target gets
# FUZZTIME of fuzzing on top of its seed corpus; new crashers land in
# testdata/fuzz/ for `make test` to replay forever after.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadArchive$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzCompressRoundTrip$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzOpLogRecovery$$' -fuzztime $(FUZZTIME) ./internal/core

# End-to-end daemon gate: builds the real ntadocd binary, serves the
# testdata corpus over HTTP, asserts every op bit-identical to direct
# library execution, and SIGTERMs it with a request in flight to check the
# graceful drain.  (These tests also run inside `make test`; the named
# target reruns them uncached so the gate always exercises the binary.)
e2e:
	$(GO) test -count=1 -run 'TestDaemon' ./cmd/ntadocd

# Short serving-layer load run (small N, short duration): stands the server
# up over a scaled-down corpus and drives it over loopback HTTP, exercising
# the session pool, coalescer, and result cache end to end.  The committed
# baseline in BENCH_loadgen.json is recorded with the full defaults
# (`go run ./cmd/benchfig -fig loadgen`).
loadgen-smoke:
	$(GO) run ./cmd/benchfig -fig loadgen -scale 0.05 -loadworkers 8 \
		-loadrequests 64 -loadout ""

check: build vet staticcheck lint test race bench-smoke crashcheck failovercheck ingestcheck fuzz-smoke e2e loadgen-smoke
