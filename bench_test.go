// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table/figure (see DESIGN.md's per-experiment index).  Each b.N iteration
// runs the full experiment cell; reported custom metrics are modeled time
// (ns-modeled/op) from the device cost model plus modeled CPU, the
// evaluation's headline metric.  cmd/benchfig prints the same data as the
// paper's tables.
//
// The corpora are the scaled synthetic analogues of Table I; use -short to
// shrink them further.
package ntadoc

import (
	"fmt"
	"testing"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/harness"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/tadoc"
)

// benchSpecs returns the four dataset analogues, shrunk under -short.
func benchSpecs(b *testing.B) []datagen.Spec {
	scale := 0.35
	if testing.Short() {
		scale = 0.1
	}
	specs := make([]datagen.Spec, len(datagen.Datasets))
	for i, s := range datagen.Datasets {
		specs[i] = s.Scaled(scale)
	}
	return specs
}

func corpusFor(b *testing.B, spec datagen.Spec) *harness.Corpus {
	b.Helper()
	c, err := harness.GetCorpus(spec)
	if err != nil {
		b.Fatalf("corpus %s: %v", spec.Name, err)
	}
	return c
}

// reportPair reports modeled time and the speedup versus a baseline result.
func reportPair(b *testing.B, self, other harness.Result) {
	b.ReportMetric(float64(self.Total.Nanoseconds()), "ns-modeled/op")
	b.ReportMetric(self.Speedup(other), "speedup")
}

// BenchmarkFig5a measures N-TADOC (phase-level persistence) against
// uncompressed text analytics on NVM: Figure 5(a), avg 2.04x in the paper.
func BenchmarkFig5a(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		for _, task := range analytics.Tasks {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, task), func(b *testing.B) {
				c := corpusFor(b, spec)
				for i := 0; i < b.N; i++ {
					nt, err := harness.RunNTADOC(c, task, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					un, err := harness.RunUncompressed(c, task, nvm.KindNVM)
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						reportPair(b, nt, un)
					}
				}
			})
		}
	}
}

// BenchmarkFig5b is Figure 5(b): operation-level persistence, avg 1.40x.
func BenchmarkFig5b(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		for _, task := range analytics.Tasks {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, task), func(b *testing.B) {
				c := corpusFor(b, spec)
				for i := 0; i < b.N; i++ {
					nt, err := harness.RunNTADOC(c, task, core.Options{Persistence: core.OpLevel})
					if err != nil {
						b.Fatal(err)
					}
					un, err := harness.RunUncompressed(c, task, nvm.KindNVM)
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						reportPair(b, nt, un)
					}
				}
			})
		}
	}
}

// BenchmarkFig6 measures the gap to the theoretical upper bound — TADOC on
// pure DRAM (the paper reports N-TADOC 1.59x slower on average).  The
// reported "slowdown" metric is ntadoc/tadoc.
func BenchmarkFig6(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		for _, task := range analytics.Tasks {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, task), func(b *testing.B) {
				c := corpusFor(b, spec)
				for i := 0; i < b.N; i++ {
					nt, err := harness.RunNTADOC(c, task, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					td, err := harness.RunTADOC(c, task, tadoc.Auto)
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						b.ReportMetric(float64(nt.Total.Nanoseconds()), "ns-modeled/op")
						b.ReportMetric(td.Speedup(nt), "slowdown-vs-DRAM")
					}
				}
			})
		}
	}
}

// BenchmarkFig7 runs the same N-TADOC engine on SSD and HDD block devices
// under the paper's 20% page-cache memory budget (speedups 1.87x and 2.92x).
func BenchmarkFig7(b *testing.B) {
	for _, kind := range []nvm.Kind{nvm.KindSSD, nvm.KindHDD} {
		for _, spec := range benchSpecs(b) {
			for _, task := range analytics.Tasks {
				b.Run(fmt.Sprintf("%s/%s/%s", kind, spec.Name, task), func(b *testing.B) {
					c := corpusFor(b, spec)
					for i := 0; i < b.N; i++ {
						nt, err := harness.RunNTADOC(c, task, core.Options{})
						if err != nil {
							b.Fatal(err)
						}
						blk, err := harness.RunNTADOC(c, task, core.Options{Kind: kind})
						if err != nil {
							b.Fatal(err)
						}
						if i == b.N-1 {
							reportPair(b, nt, blk)
						}
					}
				})
			}
		}
	}
}

// BenchmarkDRAMSavings reproduces §VI-C: the DRAM residency of N-TADOC
// versus TADOC (avg 70.7% saving in the paper), reported as saving-pct.
func BenchmarkDRAMSavings(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		for _, task := range []analytics.Task{analytics.WordCount, analytics.SequenceCount} {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, task), func(b *testing.B) {
				c := corpusFor(b, spec)
				for i := 0; i < b.N; i++ {
					td, err := harness.RunTADOC(c, task, tadoc.Auto)
					if err != nil {
						b.Fatal(err)
					}
					nt, err := harness.RunNTADOC(c, task, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						saving := 1 - float64(nt.DRAMBytes)/float64(td.DRAMBytes)
						b.ReportMetric(saving*100, "saving-pct")
						b.ReportMetric(float64(nt.NVMBytes), "nvm-bytes")
					}
				}
			})
		}
	}
}

// BenchmarkTable2 reproduces the Table II time breakdown for datasets C and
// D, reporting per-phase modeled times.
func BenchmarkTable2(b *testing.B) {
	for _, spec := range benchSpecs(b) {
		if spec.Name != "C" && spec.Name != "D" {
			continue
		}
		for _, task := range analytics.Tasks {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, task), func(b *testing.B) {
				c := corpusFor(b, spec)
				for i := 0; i < b.N; i++ {
					nt, err := harness.RunNTADOC(c, task, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if i == b.N-1 {
						b.ReportMetric(float64(nt.Init.Nanoseconds()), "ns-init/op")
						b.ReportMetric(float64(nt.Traversal.Nanoseconds()), "ns-traversal/op")
					}
				}
			})
		}
	}
}

// BenchmarkFigTraversal reproduces §VI-E: top-down versus bottom-up
// traversal on the many-small-files dataset B (the paper reports top-down
// ~1000x slower at full 134k-file scale).
func BenchmarkFigTraversal(b *testing.B) {
	specs := benchSpecs(b)
	var specB datagen.Spec
	for _, s := range specs {
		if s.Name == "B" {
			specB = s
		}
	}
	for _, strat := range []core.Strategy{core.TopDown, core.BottomUp} {
		b.Run(fmt.Sprintf("B/term-vector/%s", strat), func(b *testing.B) {
			c := corpusFor(b, specB)
			for i := 0; i < b.N; i++ {
				nt, err := harness.RunNTADOC(c, analytics.TermVector, core.Options{Strategy: strat})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(nt.Traversal.Nanoseconds()), "ns-traversal/op")
				}
			}
		})
	}
}

// BenchmarkFigCrossEval reproduces §III-B and §VI-F: the naive NVM port
// (no pruning, growable structures, scattered layout — the paper's 13.37x
// overhead) against TADOC and N-TADOC.
func BenchmarkFigCrossEval(b *testing.B) {
	naive := core.Options{
		NoPruning: true, NoBounds: true, Scatter: true,
		Persistence: core.OpLevel, PerOpCommit: true,
	}
	for _, spec := range benchSpecs(b) {
		b.Run(spec.Name+"/word count", func(b *testing.B) {
			c := corpusFor(b, spec)
			for i := 0; i < b.N; i++ {
				np, err := harness.RunNTADOC(c, analytics.WordCount, naive)
				if err != nil {
					b.Fatal(err)
				}
				td, err := harness.RunTADOC(c, analytics.WordCount, tadoc.Auto)
				if err != nil {
					b.Fatal(err)
				}
				nt, err := harness.RunNTADOC(c, analytics.WordCount, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(td.Speedup(np), "naive-slowdown-vs-DRAM")
					b.ReportMetric(nt.Speedup(np), "ntadoc-speedup-vs-naive")
				}
			}
		})
	}
}

// Ablation benches isolate the design choices DESIGN.md calls out.

// BenchmarkAblationPruning compares word count with and without Algorithm
// 1's pruning (challenge 1).
func BenchmarkAblationPruning(b *testing.B) {
	spec := datagen.DatasetC.Scaled(0.35)
	for name, opts := range map[string]core.Options{
		"pruned": {},
		"raw":    {NoPruning: true},
	} {
		b.Run(name, func(b *testing.B) {
			c := corpusFor(b, spec)
			for i := 0; i < b.N; i++ {
				nt, err := harness.RunNTADOC(c, analytics.WordCount, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(nt.Total.Nanoseconds()), "ns-modeled/op")
					b.ReportMetric(float64(nt.Device.GranuleReads), "granule-reads")
				}
			}
		})
	}
}

// BenchmarkAblationBounds compares upper-bound allocation (Algorithm 2)
// against growable structures that reconstruct on NVM (challenge 2).
func BenchmarkAblationBounds(b *testing.B) {
	spec := datagen.DatasetC.Scaled(0.35)
	for name, opts := range map[string]core.Options{
		"bounded":  {},
		"growable": {NoBounds: true},
	} {
		b.Run(name, func(b *testing.B) {
			c := corpusFor(b, spec)
			for i := 0; i < b.N; i++ {
				nt, err := harness.RunNTADOC(c, analytics.WordCount, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(nt.Total.Nanoseconds()), "ns-modeled/op")
					b.ReportMetric(float64(nt.Device.BytesWritten), "bytes-written")
				}
			}
		})
	}
}

// BenchmarkAblationLocality compares the contiguous topological pool layout
// against a scattered one (the locality half of challenge 1).
func BenchmarkAblationLocality(b *testing.B) {
	spec := datagen.DatasetC.Scaled(0.35)
	for name, opts := range map[string]core.Options{
		"contiguous": {},
		"scattered":  {Scatter: true},
	} {
		b.Run(name, func(b *testing.B) {
			c := corpusFor(b, spec)
			for i := 0; i < b.N; i++ {
				nt, err := harness.RunNTADOC(c, analytics.WordCount, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(nt.Total.Nanoseconds()), "ns-modeled/op")
					b.ReportMetric(float64(nt.Device.CacheMisses), "cache-misses")
				}
			}
		})
	}
}

// BenchmarkCompress measures grammar inference (Sequitur) throughput.
func BenchmarkCompress(b *testing.B) {
	spec := datagen.DatasetA.Scaled(0.35)
	files, d := spec.GenerateWithDict()
	var total int64
	for _, f := range files {
		total += int64(len(f))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		names := make([]string, len(files))
		dc := &Dictionary{d: d}
		if _, err := CompressTokens(files, names, dc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(total * 4)
}

// BenchmarkAblationCounters compares the two §IV-D counter forms — hash
// table versus dense vector — for the global word counter.
func BenchmarkAblationCounters(b *testing.B) {
	spec := datagen.DatasetC.Scaled(0.35)
	for name, opts := range map[string]core.Options{
		"hash":  {Counters: core.CounterHash},
		"dense": {Counters: core.CounterDense},
		"auto":  {Counters: core.CounterAuto},
	} {
		b.Run(name, func(b *testing.B) {
			c := corpusFor(b, spec)
			for i := 0; i < b.N; i++ {
				nt, err := harness.RunNTADOC(c, analytics.WordCount, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(nt.Total.Nanoseconds()), "ns-modeled/op")
					b.ReportMetric(float64(nt.NVMBytes), "nvm-bytes")
				}
			}
		})
	}
}
