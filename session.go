package ntadoc

import (
	"context"
	"errors"
	"fmt"

	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

// QuerySession is a read-only query executor over an engine: it runs batches
// through the same operation kernel as the engine's task methods, but keeps
// all traversal state in session-local DRAM, so any number of sessions may
// serve queries concurrently over one loaded archive.  This is the unit the
// daemon pools — the archive is opened once, and every concurrent request
// borrows a session.
//
// Sessions model the post-load query phase: they must not run concurrently
// with engine task methods, Recover, or Close (those mutate pool scratch),
// only with each other.  One session serves one batch at a time.
type QuerySession struct {
	e   *Engine
	one *core.Session
	sh  *core.ShardedSession
}

// NewSession opens a query session.  Sessions require an N-TADOC medium
// (NVM/SSD/HDD); the DRAM baseline engine has no session support.
func (e *Engine) NewSession() (*QuerySession, error) {
	switch {
	case e.nt != nil:
		return &QuerySession{e: e, one: e.nt.NewSession()}, nil
	case e.sh != nil:
		return &QuerySession{e: e, sh: e.sh.NewSession()}, nil
	default:
		return nil, fmt.Errorf("ntadoc: query sessions require an N-TADOC medium")
	}
}

// RunBatch executes the tasks as one fused traversal against session-local
// state, with cancellation: the kernel polls ctx at its loop heads, so a
// canceled request (client disconnect, deadline) unwinds within one body
// read per shard lane.  Results are bit-identical to Engine.RunBatch.
func (s *QuerySession) RunBatch(ctx context.Context, tasks ...Task) (*BatchResult, error) {
	return s.RunSpec(ctx, NewBatchSpec(tasks, 0))
}

// RunSpec executes a canonicalized batch with cancellation.  On
// cancellation the error chain carries ctx.Err() (for sharded engines inside
// a core.ErrShardFailed wrapper); test with errors.Is against
// context.Canceled or context.DeadlineExceeded.
func (s *QuerySession) RunSpec(ctx context.Context, spec BatchSpec) (*BatchResult, error) {
	if len(spec.tasks) == 0 {
		return &BatchResult{}, nil
	}
	ops, err := spec.ops()
	if err != nil {
		return nil, err
	}
	var results []any
	if s.one != nil {
		results, err = s.one.RunOpsContext(ctx, ops)
	} else {
		results, err = s.sh.RunOpsContext(ctx, ops)
	}
	if err != nil {
		return nil, err
	}
	return s.e.convertBatch(spec, results), nil
}

// IsDeviceFailure reports whether err originated in a simulated device
// failure (a dead shard primary) rather than a semantic error or a
// cancellation — the class of error Engine.Recover can mask by promoting
// followers.
func IsDeviceFailure(err error) bool {
	return errors.Is(err, nvm.ErrFailPoint) || errors.Is(err, nvm.ErrClosed)
}

// DocumentNames returns the archive's document names in corpus order —
// the index space of per-document results like term vectors.  The snapshot
// includes documents appended so far.
func (e *Engine) DocumentNames() []string {
	return append([]string(nil), e.docNames()...)
}

// docNames returns a point-in-time snapshot of the name table.  Name IDs
// are stable — appends only extend the table — so a snapshot's prefix stays
// valid while new documents land.
func (e *Engine) docNames() []string {
	e.namesMu.RLock()
	defer e.namesMu.RUnlock()
	return e.names
}

// BuildTag returns the archive's build tag: the shared rule table's
// checksum for unified sharded archives, 0 otherwise.  The daemon folds it
// into cache generations so results can never outlive the build that
// produced them.
func (e *Engine) BuildTag() uint32 {
	if e.a != nil && e.a.shared != nil {
		return e.a.shared.Checksum()
	}
	return 0
}

// FailoverCount reports how many shard failovers the engine has performed
// (sharded engines only; 0 otherwise).
func (e *Engine) FailoverCount() int {
	if e.sh != nil {
		return e.sh.FailoverCount()
	}
	return 0
}

// LiveFollowers reports the number of live follower devices per shard, or
// nil for unsharded or unreplicated engines.
func (e *Engine) LiveFollowers() []int {
	if e.sh == nil {
		return nil
	}
	out := make([]int, e.sh.NumShards())
	any := false
	for i := range out {
		out[i] = len(e.sh.Followers(i))
		any = any || out[i] > 0
	}
	if !any {
		return nil
	}
	return out
}

// ShardStrategies reports the per-file traversal direction the cost-based
// planner resolved for each shard (one entry for unsharded N-TADOC engines,
// nil for DRAM engines).
func (e *Engine) ShardStrategies() []string {
	if e.nt != nil {
		return []string{e.nt.Strategy().String()}
	}
	if e.sh == nil {
		return nil
	}
	out := make([]string, e.sh.NumShards())
	for i := range out {
		out[i] = e.sh.Shard(i).Strategy().String()
	}
	return out
}

// DeviceCounters mirrors the cumulative statistics of the engine's
// simulated device(s), summed across shards: the counters behind the
// modeled-time evaluation, exported for the daemon's /metrics surface.
type DeviceCounters struct {
	Reads         int64
	Writes        int64
	BytesRead     int64
	BytesWritten  int64
	GranuleReads  int64
	GranuleWrites int64
	CacheHits     int64
	CacheMisses   int64
	Flushes       int64
	FlushedBytes  int64
	Drains        int64
	Seeks         int64
	ModeledNanos  int64
}

// DeviceCounters returns the engine's cumulative device statistics (zero
// for DRAM engines, which have no simulated device).
func (e *Engine) DeviceCounters() DeviceCounters {
	var st nvm.Stats
	switch {
	case e.nt != nil:
		st = e.nt.Device().Stats()
	case e.sh != nil:
		st = e.sh.DeviceStats()
	}
	return DeviceCounters{
		Reads:         st.Reads,
		Writes:        st.Writes,
		BytesRead:     st.BytesRead,
		BytesWritten:  st.BytesWritten,
		GranuleReads:  st.GranuleReads,
		GranuleWrites: st.GranuleWrites,
		CacheHits:     st.CacheHits,
		CacheMisses:   st.CacheMisses,
		Flushes:       st.Flushes,
		FlushedBytes:  st.FlushedBytes,
		Drains:        st.Drains,
		Seeks:         st.Seeks,
		ModeledNanos:  st.ModeledNanos,
	}
}

// Recover drives the engine's failover machinery after a query session
// surfaced a device failure: a sharded engine re-dispatches a minimal
// engine-path batch, which retires any dead primary by promoting and
// recovering one of its followers (bit-identical results, see
// core.ShardedEngine).  Engines without a failover path (unsharded or
// unreplicated) return an error.
//
// Recover runs on the engine task path: callers must quiesce query sessions
// first and must discard existing sessions afterwards — they may reference
// retired shard engines.
func (e *Engine) Recover() error {
	if e.sh == nil {
		return fmt.Errorf("ntadoc: engine has no failover path to recover through")
	}
	_, err := e.sh.WordCount()
	return err
}
