package ntadoc

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// liveDocs are the documents appended online in the ingestion tests; they
// mix base vocabulary with novel words so appends grow the dictionary.
var liveDocs = []Document{
	{Name: "n0", Text: "the quick fox discovers a brand new burrow"},
	{Name: "n1", Text: "brand new words arrive while the dog naps"},
	{Name: "n2", Text: "the lazy dog jumps over the new burrow again"},
	{Name: "n3", Text: "a final appended document with the quick brown fox"},
}

// allDocs is the full corpus after every append.
func allDocs() []Document {
	return append(append([]Document(nil), shardDocs...), liveDocs...)
}

// runAll runs the full task batch with k=3 term vectors.
func runAll(t *testing.T, e *Engine) *BatchResult {
	t.Helper()
	res, err := e.RunSpec(NewBatchSpec(AllTasks, 3))
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	return res
}

// TestPublicAppendBitIdentity appends documents through the public API —
// unsharded and sharded — and checks every task's result is bit-identical
// to recompressing the whole corpus from scratch, before and after a
// forced compaction.
func TestPublicAppendBitIdentity(t *testing.T) {
	ref, err := NewEngine(mustCompress(t, allDocs()), Options{})
	if err != nil {
		t.Fatalf("NewEngine(ref): %v", err)
	}
	defer ref.Close()
	want := runAll(t, ref)
	wantNames := ref.DocumentNames()

	shard2, err := CompressSharded(shardDocs, 2)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	for _, tc := range []struct {
		name string
		a    *Archive
	}{
		{"unsharded", mustCompress(t, shardDocs)},
		{"sharded", shard2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(tc.a, Options{IngestCapacity: 1 << 20})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			defer eng.Close()
			epoch0 := eng.CorpusEpoch()
			// Two batches: a single document, then the rest.
			if err := eng.Append(liveDocs[:1]); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := eng.Append(liveDocs[1:]); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if got := eng.CorpusEpoch(); got <= epoch0 {
				t.Errorf("CorpusEpoch did not advance: %d -> %d", epoch0, got)
			}
			if got := eng.DocumentNames(); !reflect.DeepEqual(got, wantNames) {
				t.Errorf("DocumentNames = %v, want %v", got, wantNames)
			}
			if got := runAll(t, eng); !reflect.DeepEqual(got, want) {
				t.Error("results after append differ from from-scratch rebuild")
			}
			st := eng.IngestStats()
			if st.Batches != 2 || st.AppendedDocs != uint64(len(liveDocs)) {
				t.Errorf("IngestStats = %+v", st)
			}
			if err := eng.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			if got := eng.IngestStats(); got.Compactions == 0 {
				t.Errorf("no compaction recorded: %+v", got)
			}
			if got := runAll(t, eng); !reflect.DeepEqual(got, want) {
				t.Error("results after compaction differ from from-scratch rebuild")
			}
		})
	}
}

// TestAppendRequiresIngest checks the error surface: DRAM engines and
// engines built without IngestCapacity reject appends with ErrNoIngest and
// stay fully queryable.
func TestAppendRequiresIngest(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"dram", Options{Medium: MediumDRAM}},
		{"no-capacity", Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(mustCompress(t, shardDocs), tc.opts)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			defer eng.Close()
			if err := eng.Append(liveDocs[:1]); !errors.Is(err, ErrNoIngest) {
				t.Errorf("Append = %v, want ErrNoIngest", err)
			}
			if _, err := eng.WordCount(); err != nil {
				t.Errorf("engine not queryable after rejected append: %v", err)
			}
			if eng.CorpusEpoch() != 0 {
				t.Errorf("CorpusEpoch = %d on non-ingest engine", eng.CorpusEpoch())
			}
		})
	}
}

// TestArchiveDeltaRoundTrip serializes an appended-to archive (which emits
// the NTDCDLT1 delta container: base bytes unchanged plus a delta grammar)
// and checks the reloaded archive folds the delta in and serves results
// bit-identical to a from-scratch compression of the full corpus.
func TestArchiveDeltaRoundTrip(t *testing.T) {
	ref, err := NewEngine(mustCompress(t, allDocs()), Options{})
	if err != nil {
		t.Fatalf("NewEngine(ref): %v", err)
	}
	defer ref.Close()
	want := runAll(t, ref)

	shard3, err := CompressSharded(shardDocs, 3)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	for _, tc := range []struct {
		name string
		a    *Archive
	}{
		{"unsharded", mustCompress(t, shardDocs)},
		{"sharded", shard3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(tc.a, Options{IngestCapacity: 1 << 20})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			if err := eng.Append(liveDocs); err != nil {
				t.Fatalf("Append: %v", err)
			}
			eng.Close()
			if got := tc.a.AppendedDocuments(); got != len(liveDocs) {
				t.Fatalf("AppendedDocuments = %d, want %d", got, len(liveDocs))
			}

			var buf bytes.Buffer
			if _, err := tc.a.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
			b, err := ReadArchive(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadArchive: %v", err)
			}
			// Reading folds the delta: the loaded archive is a compacted
			// whole-corpus grammar.
			if got := b.AppendedDocuments(); got != 0 {
				t.Errorf("AppendedDocuments after reload = %d, want 0", got)
			}
			if got := b.Stats().Documents; got != len(allDocs()) {
				t.Errorf("Documents = %d, want %d", got, len(allDocs()))
			}
			reng, err := NewEngine(b, Options{})
			if err != nil {
				t.Fatalf("NewEngine(reloaded): %v", err)
			}
			defer reng.Close()
			if got := runAll(t, reng); !reflect.DeepEqual(got, want) {
				t.Error("reloaded delta archive results differ from from-scratch rebuild")
			}
		})
	}
}

// TestNewEngineFoldsPendingDelta checks that building a second engine from
// an archive holding unfolded appends folds them first, so the new engine —
// on any medium — serves the full corpus.
func TestNewEngineFoldsPendingDelta(t *testing.T) {
	a := mustCompress(t, shardDocs)
	eng, err := NewEngine(a, Options{IngestCapacity: 1 << 20})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := eng.Append(liveDocs); err != nil {
		t.Fatalf("Append: %v", err)
	}
	eng.Close()

	ref, err := NewEngine(mustCompress(t, allDocs()), Options{Medium: MediumDRAM})
	if err != nil {
		t.Fatalf("NewEngine(ref): %v", err)
	}
	defer ref.Close()
	dram, err := NewEngine(a, Options{Medium: MediumDRAM})
	if err != nil {
		t.Fatalf("NewEngine(folded DRAM): %v", err)
	}
	defer dram.Close()
	if a.AppendedDocuments() != 0 {
		t.Errorf("fold left %d pending documents", a.AppendedDocuments())
	}
	if got, want := runAll(t, dram), runAll(t, ref); !reflect.DeepEqual(got, want) {
		t.Error("folded DRAM engine results differ from from-scratch rebuild")
	}
}
