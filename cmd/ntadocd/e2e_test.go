package main_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/text-analytics/ntadoc"
	"github.com/text-analytics/ntadoc/internal/server"
)

// buildDaemon compiles the real ntadocd binary into dir.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "ntadocd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building ntadocd: %v\n%s", err, out)
	}
	return bin
}

// loadTestdata compresses the repo's testdata corpus into an archive file
// and returns the path plus the documents for reference execution.
func loadTestdata(t *testing.T, dir string) (string, []ntadoc.Document) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.txt"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no testdata corpus: %v", err)
	}
	var docs []ntadoc.Document
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("reading %s: %v", p, err)
		}
		docs = append(docs, ntadoc.Document{Name: filepath.Base(p), Text: string(data)})
	}
	a, err := ntadoc.CompressSharded(docs, 2)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	path := filepath.Join(dir, "corpus.tdc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := a.WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return path, docs
}

// daemon is one running ntadocd process.
type daemon struct {
	cmd  *exec.Cmd
	base string        // http://addr
	out  *bytes.Buffer // full stdout+stderr, filled by the reader goroutine
	done chan error    // receives cmd.Wait()
}

// startDaemon launches the binary and waits for it to report its listen
// address and pass a health check.
func startDaemon(t *testing.T, bin, archive string, env ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-replicas", "1", archive)
	cmd.Env = append(os.Environ(), env...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting ntadocd: %v", err)
	}
	d := &daemon{cmd: cmd, out: &bytes.Buffer{}, done: make(chan error, 1)}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.out.WriteString(line + "\n")
			if addr, ok := strings.CutPrefix(line, "ntadocd: listening on "); ok {
				addrc <- addr
			}
		}
		d.done <- cmd.Wait()
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		select {
		case <-d.done:
		case <-time.After(5 * time.Second):
		}
	})
	select {
	case addr := <-addrc:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never reported its address; output:\n%s", d.out)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy; output:\n%s", d.out)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDaemonEndToEnd drives the real binary: every op served over HTTP must
// be bit-identical to direct library execution, and SIGTERM must drain
// in-flight requests before exiting 0.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	archive, docs := loadTestdata(t, dir)

	// Reference: direct library execution over the same archive bytes.
	f, err := os.Open(archive)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ntadoc.ReadArchive(f)
	f.Close()
	if err != nil {
		t.Fatalf("ReadArchive: %v", err)
	}
	eng, err := ntadoc.NewEngine(a, ntadoc.Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer eng.Close()
	names := a.DocumentNames()
	if len(names) != len(docs) {
		t.Fatalf("archive holds %d documents, want %d", len(names), len(docs))
	}

	d := startDaemon(t, bin, archive)

	batches := [][]string{
		{"wordcount"}, {"sort"}, {"termvector"}, {"invertedindex"},
		{"seqcount"}, {"rankedindex"},
		{"rankedindex", "wordcount", "sort", "termvector", "invertedindex", "seqcount"},
	}
	for _, tasks := range batches {
		spec, err := ntadoc.ParseBatchSpec(tasks, 0)
		if err != nil {
			t.Fatalf("ParseBatchSpec(%v): %v", tasks, err)
		}
		direct, err := eng.RunSpec(spec)
		if err != nil {
			t.Fatalf("RunSpec(%v): %v", tasks, err)
		}
		want, err := server.EncodeResult(direct, names)
		if err != nil {
			t.Fatalf("EncodeResult: %v", err)
		}

		url := d.base + "/v1/query?task=" + strings.Join(tasks, ",")
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
		}
		var env server.Response
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		if env.Signature != spec.Signature() {
			t.Errorf("%v: signature %q, want %q", tasks, env.Signature, spec.Signature())
		}
		if !bytes.Equal(env.Result, want) {
			t.Errorf("%v: daemon result differs from direct execution\n got %.200s\nwant %.200s",
				tasks, env.Result, want)
		}
	}

	// Clean shutdown with nothing in flight.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, d.out)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; output:\n%s", d.out)
	}
	if !strings.Contains(d.out.String(), "drained, bye") {
		t.Errorf("daemon did not report a drained shutdown:\n%s", d.out)
	}
}

// TestDaemonGracefulDrain sends SIGTERM while a request is held in flight
// (via the NTADOCD_TEST_DELAY hook) and checks the request still completes
// with 200 and the process exits 0.
func TestDaemonGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	archive, _ := loadTestdata(t, dir)
	d := startDaemon(t, bin, archive, "NTADOCD_TEST_DELAY=750ms")

	type result struct {
		code int
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(d.base + "/v1/query?task=wordcount")
		if err != nil {
			resc <- result{0, err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		resc <- result{resp.StatusCode, nil}
	}()
	time.Sleep(250 * time.Millisecond) // request is inside the handler delay
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight request failed across SIGTERM: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, want 200", r.code)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exited non-zero: %v\n%s", err, d.out)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after drain; output:\n%s", d.out)
	}
	if !strings.Contains(d.out.String(), "drained, bye") {
		t.Errorf("missing drained-shutdown report:\n%s", d.out)
	}
}
