// Command ntadocd is the long-lived query-serving daemon: it opens a
// compressed archive once, builds its N-TADOC engine once, and serves the
// six analytics tasks over JSON HTTP — amortizing the archive open and
// engine initialization across every query, coalescing identical in-flight
// batches, and caching hot results.
//
//	ntadocd -addr :8080 corpus.tdc
//	ntadocd -addr 127.0.0.1:0 -medium nvm -replicas 1 -sessions 16 corpus.tdc
//
// Endpoints:
//
//	GET/POST /v1/query     one batch (?task=wordcount,sort&k=5 or JSON body)
//	GET/POST /v1/batch     alias of /v1/query
//	POST     /v1/append    append a document batch durably (-ingest-cap > 0)
//	GET      /v1/ingest    live ingestion state (epoch, delta sizes, names)
//	GET      /healthz      liveness
//	GET      /metrics      Prometheus-style serving + device counters
//	GET      /debug/engine shard, replica, planner, pool, and cache state
//
// On SIGTERM/SIGINT the daemon stops accepting connections, drains in-flight
// requests, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/text-analytics/ntadoc"
	"github.com/text-analytics/ntadoc/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ntadocd:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("ntadocd", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address (host:0 picks a free port)")
	medium := fs.String("medium", "nvm", "nvm|ssd|hdd (query sessions need an N-TADOC medium)")
	pool := fs.String("pool", "", "file-backed NVM pool path (persists across runs)")
	replicas := fs.Int("replicas", 0, "follower devices per shard (enables failover recovery)")
	sessions := fs.Int("sessions", 0, "concurrent query sessions (0 = default)")
	queue := fs.Int("queue", 0, "admission queue depth before shedding with 429 (0 = default)")
	cache := fs.Int("cache", 0, "result cache entries (0 = default, negative disables)")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = default)")
	ingestCap := fs.Int64("ingest-cap", 0, "durable append-log bytes per shard (0 disables /v1/append)")
	compactDocs := fs.Int("compact-docs", 0, "compact a shard once its delta exceeds this many documents (0 = default)")
	compactBytes := fs.Int64("compact-bytes", 0, "compact a shard once its delta exceeds this many bytes (0 = default)")
	compactEvery := fs.Duration("compact-interval", 0, "background compaction poll cadence (0 = default)")
	fs.Parse(os.Args[1:])
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one archive path")
	}

	var m ntadoc.Medium
	switch *medium {
	case "nvm":
		m = ntadoc.MediumNVM
	case "ssd":
		m = ntadoc.MediumSSD
	case "hdd":
		m = ntadoc.MediumHDD
	default:
		return fmt.Errorf("unknown medium %q", *medium)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	a, err := ntadoc.ReadArchive(f)
	f.Close()
	if err != nil {
		return err
	}
	eng, err := ntadoc.NewEngine(a, ntadoc.Options{
		Medium:         m,
		PoolPath:       *pool,
		Replicas:       *replicas,
		IngestCapacity: *ingestCap,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	if *ingestCap > 0 {
		// Background compaction keeps query cost over base+delta bounded
		// while appends keep landing; swaps never block queries.
		stopCompact := eng.AutoCompact(ntadoc.CompactionPolicy{
			MaxDeltaDocs:  *compactDocs,
			MaxDeltaBytes: *compactBytes,
			Interval:      *compactEvery,
		})
		defer stopCompact()
	}

	cfg := server.Config{
		Engine:         eng,
		Sessions:       *sessions,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
	}
	// Test hook: the e2e harness holds requests in flight across a SIGTERM
	// to observe the graceful drain.
	if d := os.Getenv("NTADOCD_TEST_DELAY"); d != "" {
		delay, err := time.ParseDuration(d)
		if err != nil {
			return fmt.Errorf("NTADOCD_TEST_DELAY: %v", err)
		}
		cfg.HandlerDelay = delay
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The listen address goes to stdout first thing so wrappers (the e2e
	// test, the loadgen harness) can pick up a :0-assigned port.
	fmt.Printf("ntadocd: listening on %s\n", ln.Addr())
	fmt.Printf("ntadocd: serving %s: %d documents, %d shards, generation %s\n",
		fs.Arg(0), len(eng.DocumentNames()), eng.NumShards(), srv.Generation())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("ntadocd: shutting down, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("ntadocd: drained, bye")
	return nil
}
