// Command ntalint runs the repository's custom static-analysis suite
// (internal/lint): persistcheck, determcheck, publishcheck, and guardcheck.
//
// Standalone mode loads and checks packages itself:
//
//	ntalint [-c analyzer,analyzer] [packages]   (default ./...)
//
// It also speaks the `go vet -vettool` unit-checker protocol: when invoked
// by the go command it answers -V=full with a version line and accepts a
// *.cfg JSON file describing one package unit, so
//
//	go build -o /tmp/ntalint ./cmd/ntalint
//	go vet -vettool=/tmp/ntalint ./...
//
// runs the suite under go vet's caching and package graph.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"github.com/text-analytics/ntadoc/internal/lint"
)

func main() {
	// The go command probes vet tools twice before use: -V=full for a
	// version line (a cache key component) and -flags for a JSON description
	// of the tool's analyzer flags (none here beyond the standard protocol).
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "-V":
			fmt.Printf("ntalint version v1 (ntadoc invariant suite)\n")
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}

	selected := flag.String("c", "", "comma-separated analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ntalint [-c analyzers] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := lint.All()
	if *selected != "" {
		var err error
		analyzers, err = lint.ByName(*selected)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], analyzers))
	}

	pkgs, err := lint.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// vetConfig is the JSON unit description the go command hands a vettool (see
// golang.org/x/tools/go/analysis/unitchecker for the reference decoder).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package unit under the vettool protocol: parse the
// unit's files, type-check them against the export data the go command
// already compiled, run the analyzers, and report findings on stderr.
func runVetUnit(cfgFile string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntalint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ntalint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The go command requires the facts file to exist even though this suite
	// exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ntalint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	pkg := &lint.Package{
		PkgPath:  cfg.ImportPath,
		Dir:      cfg.Dir,
		Fset:     fset,
		TestFile: make(map[*ast.File]bool),
	}
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntalint: %v\n", err)
			return 2
		}
		pkg.Files = append(pkg.Files, f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFile[f] = true
		}
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("ntalint: no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, pkg.Files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ntalint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg.Types = tpkg
	pkg.Info = info

	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntalint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
