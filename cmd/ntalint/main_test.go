package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestSmoke builds and runs the standalone binary over the whole module: the
// tree must be lint-clean, so the run exits 0.  This is the same invocation
// the Makefile's lint target uses.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and analyzes the whole module")
	}
	cmd := exec.Command("go", "run", "./cmd/ntalint", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ntalint over ./... failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("ntalint over a clean tree produced output:\n%s", out)
	}
}

// TestVersionProbe answers the go command's vettool version handshake.
func TestVersionProbe(t *testing.T) {
	cmd := exec.Command("go", "run", "./cmd/ntalint", "-V=full")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full failed: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "ntalint version ") {
		t.Fatalf("-V=full answered %q; the go command requires a 'name version ...' line", out)
	}
}
