package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"github.com/text-analytics/ntadoc/internal/server"
)

// cmdAppend ships one durable append batch to a running daemon: the files
// become one batch, committed atomically — after the daemon acknowledges,
// every subsequent query reflects them.
func cmdAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	serverURL := fs.String("server", "http://localhost:8080", "base URL of a running ntadocd daemon")
	retries := fs.Int("retries", 10, "retry attempts when a compaction swap rejects the append")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("append: no input files")
	}
	req := server.AppendRequest{Documents: make([]server.AppendDocument, 0, fs.NArg())}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		req.Documents = append(req.Documents, server.AppendDocument{
			Name: filepath.Base(path),
			Text: string(data),
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := strings.TrimRight(*serverURL, "/") + "/v1/append"
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < *retries {
			// A compaction swap was mid-flight; the append is simply retried.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(50 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("daemon: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		var ack server.AppendResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return fmt.Errorf("daemon: decoding response: %v", err)
		}
		fmt.Printf("appended %d documents; corpus epoch %d, generation %s\n",
			ack.Appended, ack.Epoch, ack.Generation)
		return nil
	}
}

// cmdTail follows a daemon's live ingestion: it polls /v1/ingest and prints
// a line whenever the corpus epoch advances — newly appended documents and
// compactions as they land.  With -once it prints the current state and
// exits; otherwise it follows until interrupted.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	serverURL := fs.String("server", "http://localhost:8080", "base URL of a running ntadocd daemon")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll cadence")
	once := fs.Bool("once", false, "print the current ingestion state and exit")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("tail: takes no archive path (the daemon owns the archive)")
	}
	url := strings.TrimRight(*serverURL, "/") + "/v1/ingest"

	fetch := func() (server.IngestInfo, error) {
		var info server.IngestInfo
		resp, err := http.Get(url)
		if err != nil {
			return info, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return info, fmt.Errorf("daemon: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		return info, err
	}

	last, err := fetch()
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d documents, epoch %d, %d batches (%d appended, %d compacted over %d compactions), delta %d docs / %d symbols, log %d/%d bytes\n",
		last.Documents, last.Epoch, last.Batches, last.AppendedDocs,
		last.CompactedDocs, last.Compactions, last.DeltaDocs, last.DeltaSymbols,
		last.LogBytes, last.LogCapacity)
	if *once {
		return nil
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-tick.C:
		}
		info, err := fetch()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tail:", err)
			continue
		}
		if info.Epoch == last.Epoch && info.Generation == last.Generation {
			continue
		}
		if n := info.Documents - last.Documents; n > 0 {
			names := info.LastDocuments
			if len(names) > n {
				names = names[len(names)-n:]
			}
			fmt.Printf("epoch %d: +%d documents (%s), delta %d docs / %d symbols\n",
				info.Epoch, n, strings.Join(names, ", "), info.DeltaDocs, info.DeltaSymbols)
		}
		if info.Compactions > last.Compactions {
			fmt.Printf("epoch %d: compacted %d -> base (%d compactions total), delta now %d docs\n",
				info.Epoch, last.DeltaDocs, info.Compactions, info.DeltaDocs)
		}
		last = info
	}
}
