// Command ntadoc compresses text with TADOC and runs N-TADOC analytics on
// the compressed archive without decompression.
//
//	ntadoc compress -o corpus.tdc doc1.txt doc2.txt ...
//	ntadoc stats corpus.tdc
//	ntadoc analyze -task wordcount -top 20 corpus.tdc
//	ntadoc analyze -task seqcount -medium dram corpus.tdc
//	ntadoc decompress -dir out/ corpus.tdc
//	ntadoc inspect -dot corpus.tdc > dag.dot
//
// Tasks: wordcount, sort, termvector, invertedindex, seqcount, rankedindex.
// Media: nvm (default, simulated persistent memory), dram (original TADOC),
// ssd, hdd.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/text-analytics/ntadoc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntadoc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ntadoc <compress|stats|analyze|decompress|inspect> [flags] ...")
	os.Exit(2)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	out := fs.String("o", "corpus.tdc", "output archive path")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("compress: no input files")
	}
	docs := make([]ntadoc.Document, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		docs = append(docs, ntadoc.Document{Name: filepath.Base(path), Text: string(data)})
	}
	a, err := ntadoc.Compress(docs)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := a.WriteTo(f)
	if err != nil {
		return err
	}
	st := a.Stats()
	fmt.Printf("compressed %d documents: %d tokens -> %d grammar symbols (%.1f%%), %d rules, archive %d bytes\n",
		st.Documents, st.Tokens, st.GrammarSymbols, st.CompressionRate*100, st.Rules, n)
	return f.Sync()
}

func loadArchive(path string) (*ntadoc.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ntadoc.ReadArchive(f)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: expected one archive path")
	}
	a, err := loadArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	st := a.Stats()
	fmt.Printf("documents:        %d\n", st.Documents)
	fmt.Printf("rules:            %d\n", st.Rules)
	fmt.Printf("vocabulary:       %d\n", st.Vocabulary)
	fmt.Printf("tokens:           %d\n", st.Tokens)
	fmt.Printf("grammar symbols:  %d\n", st.GrammarSymbols)
	fmt.Printf("compression rate: %.1f%%\n", st.CompressionRate*100)
	return nil
}

func mediumFromFlag(name string) (ntadoc.Medium, error) {
	switch name {
	case "nvm":
		return ntadoc.MediumNVM, nil
	case "dram":
		return ntadoc.MediumDRAM, nil
	case "ssd":
		return ntadoc.MediumSSD, nil
	case "hdd":
		return ntadoc.MediumHDD, nil
	default:
		return 0, fmt.Errorf("unknown medium %q", name)
	}
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	task := fs.String("task", "wordcount", "wordcount|sort|termvector|invertedindex|seqcount|rankedindex")
	medium := fs.String("medium", "nvm", "nvm|dram|ssd|hdd")
	top := fs.Int("top", 20, "print at most this many result lines (0 = all)")
	pool := fs.String("pool", "", "file-backed NVM pool path (persists across runs)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze: expected one archive path")
	}
	a, err := loadArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	m, err := mediumFromFlag(*medium)
	if err != nil {
		return err
	}
	seq := *task == "seqcount" || *task == "rankedindex"
	eng, err := ntadoc.NewEngine(a, ntadoc.Options{
		Medium:      m,
		PoolPath:    *pool,
		NoSequences: !seq,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	limit := func(n int) int {
		if *top > 0 && n > *top {
			return *top
		}
		return n
	}

	switch *task {
	case "wordcount":
		counts, err := eng.TopTerms(*top)
		if err != nil {
			return err
		}
		for _, tc := range counts {
			fmt.Printf("%10d  %s\n", tc.Count, tc.Term)
		}
	case "sort":
		terms, err := eng.Sort()
		if err != nil {
			return err
		}
		for _, tc := range terms[:limit(len(terms))] {
			fmt.Printf("%-24s %d\n", tc.Term, tc.Count)
		}
	case "termvector":
		vecs, err := eng.TermVectors(*top)
		if err != nil {
			return err
		}
		names := a.DocumentNames()
		for i, vec := range vecs {
			fmt.Printf("%s:", names[i])
			for _, tc := range vec {
				fmt.Printf(" %s(%d)", tc.Term, tc.Count)
			}
			fmt.Println()
		}
	case "invertedindex":
		inv, err := eng.InvertedIndex()
		if err != nil {
			return err
		}
		words := make([]string, 0, len(inv))
		for w := range inv {
			words = append(words, w)
		}
		sort.Strings(words)
		for _, w := range words[:limit(len(words))] {
			fmt.Printf("%-24s %v\n", w, inv[w])
		}
	case "seqcount":
		sc, err := eng.SequenceCount()
		if err != nil {
			return err
		}
		type row struct {
			seq string
			n   uint64
		}
		rows := make([]row, 0, len(sc))
		for q, n := range sc {
			rows = append(rows, row{q, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].seq < rows[j].seq
		})
		for _, r := range rows[:limit(len(rows))] {
			fmt.Printf("%10d  %s\n", r.n, r.seq)
		}
	case "rankedindex":
		rii, err := eng.RankedInvertedIndex()
		if err != nil {
			return err
		}
		seqs := make([]string, 0, len(rii))
		for q := range rii {
			seqs = append(seqs, q)
		}
		sort.Strings(seqs)
		for _, q := range seqs[:limit(len(seqs))] {
			fmt.Printf("%-36s", q)
			for _, dc := range rii[q] {
				fmt.Printf(" %s(%d)", dc.Doc, dc.Count)
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown task %q", *task)
	}

	init, trav := eng.PhaseTimes()
	if init > 0 {
		dev, dram := eng.MemoryFootprint()
		fmt.Fprintf(os.Stderr, "phases: init %v, traversal %v; footprint: %d device bytes, %d DRAM bytes\n",
			init, trav, dev, dram)
	}
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	dir := fs.String("dir", ".", "output directory")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("decompress: expected one archive path")
	}
	a, err := loadArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for _, doc := range a.Decompress() {
		name := doc.Name
		if name == "" {
			name = "doc.txt"
		}
		path := filepath.Join(*dir, filepath.Base(name))
		if err := os.WriteFile(path, []byte(doc.Text), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dot := fs.Bool("dot", false, "emit the grammar DAG in Graphviz DOT format")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect: expected one archive path")
	}
	a, err := loadArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	if *dot {
		return a.WriteDOT(os.Stdout)
	}
	st := a.Stats()
	fmt.Printf("%d rules over %d documents; %d grammar symbols for %d tokens\n",
		st.Rules, st.Documents, st.GrammarSymbols, st.Tokens)
	return nil
}
