// Command ntadoc compresses text with TADOC and runs N-TADOC analytics on
// the compressed archive without decompression.
//
//	ntadoc compress -o corpus.tdc doc1.txt doc2.txt ...
//	ntadoc compress -shards 4 -o corpus.tdc docs/*.txt
//	ntadoc stats corpus.tdc
//	ntadoc analyze -task wordcount -top 20 corpus.tdc
//	ntadoc analyze -task seqcount -medium dram corpus.tdc
//	ntadoc analyze -task wordcount,sort,invertedindex corpus.tdc
//	ntadoc analyze -server http://localhost:8080 -task wordcount,sort
//	ntadoc decompress -dir out/ corpus.tdc
//	ntadoc inspect -dot corpus.tdc > dag.dot
//	ntadoc append -server http://localhost:8080 new1.txt new2.txt
//	ntadoc tail -server http://localhost:8080
//
// With -server, analyze queries a running ntadocd daemon instead of opening
// an archive locally; both paths shape the request through the same
// canonical batch spec, so a CLI query and a daemon query for the same task
// set are one batch.
//
// Tasks: wordcount, sort, termvector, invertedindex, seqcount, rankedindex.
// A comma-separated -task list runs as one fused batch over a single
// traversal of the compressed representation.
// Media: nvm (default, simulated persistent memory), dram (original TADOC),
// ssd, hdd.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/text-analytics/ntadoc"
	"github.com/text-analytics/ntadoc/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "append":
		err = cmdAppend(os.Args[2:])
	case "tail":
		err = cmdTail(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntadoc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ntadoc <compress|stats|analyze|decompress|inspect|append|tail> [flags] ...")
	os.Exit(2)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	out := fs.String("o", "corpus.tdc", "output archive path")
	shards := fs.Int("shards", 1, "compress into this many independent shards (parallel build and queries; slightly worse compression)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("compress: no input files")
	}
	if *shards < 1 {
		return fmt.Errorf("compress: -shards must be at least 1")
	}
	docs := make([]ntadoc.Document, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		docs = append(docs, ntadoc.Document{Name: filepath.Base(path), Text: string(data)})
	}
	a, err := ntadoc.CompressSharded(docs, *shards)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := a.WriteTo(f)
	if err != nil {
		return err
	}
	st := a.Stats()
	shardNote := ""
	if a.NumShards() > 1 {
		shardNote = fmt.Sprintf(", %d shards", a.NumShards())
	}
	fmt.Printf("compressed %d documents: %d tokens -> %d grammar symbols (%.1f%%), %d rules%s, archive %d bytes\n",
		st.Documents, st.Tokens, st.GrammarSymbols, st.CompressionRate*100, st.Rules, shardNote, n)
	return f.Sync()
}

func loadArchive(path string) (*ntadoc.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ntadoc.ReadArchive(f)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: expected one archive path")
	}
	a, err := loadArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	st := a.Stats()
	fmt.Printf("documents:        %d\n", st.Documents)
	if a.NumShards() > 1 {
		fmt.Printf("shards:           %d\n", a.NumShards())
	}
	fmt.Printf("rules:            %d\n", st.Rules)
	fmt.Printf("vocabulary:       %d\n", st.Vocabulary)
	fmt.Printf("tokens:           %d\n", st.Tokens)
	fmt.Printf("grammar symbols:  %d\n", st.GrammarSymbols)
	fmt.Printf("compression rate: %.1f%%\n", st.CompressionRate*100)
	return nil
}

func mediumFromFlag(name string) (ntadoc.Medium, error) {
	switch name {
	case "nvm":
		return ntadoc.MediumNVM, nil
	case "dram":
		return ntadoc.MediumDRAM, nil
	case "ssd":
		return ntadoc.MediumSSD, nil
	case "hdd":
		return ntadoc.MediumHDD, nil
	default:
		return 0, fmt.Errorf("unknown medium %q", name)
	}
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	task := fs.String("task", "wordcount", "comma-separated list of wordcount|sort|termvector|invertedindex|seqcount|rankedindex")
	medium := fs.String("medium", "nvm", "nvm|dram|ssd|hdd")
	top := fs.Int("top", 20, "print at most this many result lines per task (0 = all)")
	pool := fs.String("pool", "", "file-backed NVM pool path (persists across runs)")
	serverURL := fs.String("server", "", "base URL of a running ntadocd daemon; queries it instead of opening an archive locally")
	fs.Parse(args)

	// Both execution paths shape the request the same way: the task list
	// reduces to a canonical batch spec — the canonicalization the daemon's
	// coalescer and result cache key on.  Results print in the order the
	// user asked for (deduplicated); execution order is the spec's.
	var printTasks []ntadoc.Task
	seen := make(map[ntadoc.Task]bool)
	var names []string
	for _, name := range strings.Split(*task, ",") {
		name = strings.TrimSpace(name)
		t, err := ntadoc.ParseTask(name)
		if err != nil {
			return err
		}
		names = append(names, name)
		if !seen[t] {
			seen[t] = true
			printTasks = append(printTasks, t)
		}
	}
	k := 0
	if len(printTasks) == 1 && printTasks[0] == ntadoc.TaskTermVectors {
		k = *top // single-task termvector: -top is the vector length
	}
	spec, err := ntadoc.ParseBatchSpec(names, k)
	if err != nil {
		return err
	}

	var res *ntadoc.BatchResult
	var docNames []string
	var eng *ntadoc.Engine
	if *serverURL != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("analyze: -server mode takes no archive path (the daemon owns the archive)")
		}
		res, docNames, err = queryDaemon(*serverURL, spec)
		if err != nil {
			return err
		}
	} else {
		if fs.NArg() != 1 {
			return fmt.Errorf("analyze: expected one archive path")
		}
		a, err := loadArchive(fs.Arg(0))
		if err != nil {
			return err
		}
		m, err := mediumFromFlag(*medium)
		if err != nil {
			return err
		}
		eng, err = ntadoc.NewEngine(a, ntadoc.Options{
			Medium:      m,
			PoolPath:    *pool,
			NoSequences: !spec.NeedsSequences(),
		})
		if err != nil {
			return err
		}
		defer eng.Close()
		// The whole batch executes fused: the engine traverses its
		// representation once and feeds every task from the same reads.
		res, err = eng.RunSpec(spec)
		if err != nil {
			return err
		}
		docNames = a.DocumentNames()
	}

	for i, t := range printTasks {
		if len(printTasks) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n", t)
		}
		printTaskResult(t, res, docNames, *top)
	}

	if eng != nil {
		init, trav := eng.PhaseTimes()
		if init > 0 {
			dev, dram := eng.MemoryFootprint()
			fmt.Fprintf(os.Stderr, "phases: init %v, traversal %v; footprint: %d device bytes, %d DRAM bytes\n",
				init, trav, dev, dram)
		}
	}
	return nil
}

// queryDaemon runs the spec against an ntadocd daemon and converts the wire
// result back to the library form the shared printers render.
func queryDaemon(base string, spec ntadoc.BatchSpec) (*ntadoc.BatchResult, []string, error) {
	tasks := spec.Tasks()
	names := make([]string, len(tasks))
	for i, t := range tasks {
		names[i] = t.String()
	}
	body, err := json.Marshal(server.Request{Tasks: names, TermVectorK: spec.TermVectorK()})
	if err != nil {
		return nil, nil, err
	}
	url := strings.TrimRight(base, "/") + "/v1/batch"
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, nil, fmt.Errorf("daemon: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var env server.Response
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, nil, fmt.Errorf("daemon: decoding response: %v", err)
	}
	var wire server.Result
	if err := json.Unmarshal(env.Result, &wire); err != nil {
		return nil, nil, fmt.Errorf("daemon: decoding result: %v", err)
	}
	res, docs := wire.BatchResult()
	fmt.Fprintf(os.Stderr, "daemon: generation %s, batch %s, cached=%v, coalesced=%v\n",
		env.Generation, env.Signature, env.Cached, env.Coalesced)
	return res, docs, nil
}

// limitTo caps n at top when top > 0.
func limitTo(n, top int) int {
	if top > 0 && n > top {
		return top
	}
	return n
}

// printTaskResult renders one task's slot of a BatchResult.
func printTaskResult(t ntadoc.Task, res *ntadoc.BatchResult, names []string, top int) {
	switch t {
	case ntadoc.TaskWordCount:
		type row struct {
			term string
			n    uint64
		}
		rows := make([]row, 0, len(res.WordCount))
		for w, n := range res.WordCount {
			rows = append(rows, row{w, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].term < rows[j].term
		})
		for _, r := range rows[:limitTo(len(rows), top)] {
			fmt.Printf("%10d  %s\n", r.n, r.term)
		}
	case ntadoc.TaskSort:
		for _, tc := range res.Sort[:limitTo(len(res.Sort), top)] {
			fmt.Printf("%-24s %d\n", tc.Term, tc.Count)
		}
	case ntadoc.TaskTermVectors:
		for i, vec := range res.TermVectors {
			fmt.Printf("%s:", names[i])
			for _, tc := range vec {
				fmt.Printf(" %s(%d)", tc.Term, tc.Count)
			}
			fmt.Println()
		}
	case ntadoc.TaskInvertedIndex:
		words := make([]string, 0, len(res.InvertedIndex))
		for w := range res.InvertedIndex {
			words = append(words, w)
		}
		sort.Strings(words)
		for _, w := range words[:limitTo(len(words), top)] {
			fmt.Printf("%-24s %v\n", w, res.InvertedIndex[w])
		}
	case ntadoc.TaskSequenceCount:
		type row struct {
			seq string
			n   uint64
		}
		rows := make([]row, 0, len(res.SequenceCount))
		for q, n := range res.SequenceCount {
			rows = append(rows, row{q, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].seq < rows[j].seq
		})
		for _, r := range rows[:limitTo(len(rows), top)] {
			fmt.Printf("%10d  %s\n", r.n, r.seq)
		}
	case ntadoc.TaskRankedInvertedIndex:
		seqs := make([]string, 0, len(res.RankedInvertedIndex))
		for q := range res.RankedInvertedIndex {
			seqs = append(seqs, q)
		}
		sort.Strings(seqs)
		for _, q := range seqs[:limitTo(len(seqs), top)] {
			fmt.Printf("%-36s", q)
			for _, dc := range res.RankedInvertedIndex[q] {
				fmt.Printf(" %s(%d)", dc.Doc, dc.Count)
			}
			fmt.Println()
		}
	}
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	dir := fs.String("dir", ".", "output directory")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("decompress: expected one archive path")
	}
	a, err := loadArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for _, doc := range a.Decompress() {
		name := doc.Name
		if name == "" {
			name = "doc.txt"
		}
		path := filepath.Join(*dir, filepath.Base(name))
		if err := os.WriteFile(path, []byte(doc.Text), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dot := fs.Bool("dot", false, "emit the grammar DAG in Graphviz DOT format")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect: expected one archive path")
	}
	a, err := loadArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	if *dot {
		return a.WriteDOT(os.Stdout)
	}
	st := a.Stats()
	fmt.Printf("%d rules over %d documents; %d grammar symbols for %d tokens\n",
		st.Rules, st.Documents, st.GrammarSymbols, st.Tokens)
	return nil
}
