package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The subcommands are plain functions over flags, so the CLI is testable
// without exec: drive the full compress -> stats -> analyze -> inspect ->
// decompress flow on the repository's testdata corpora.

func testdataPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob("../../testdata/*.txt")
	if err != nil || len(paths) == 0 {
		t.Fatalf("testdata: %v (%d)", err, len(paths))
	}
	return paths
}

// capture redirects os.Stdout around fn.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	outCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		outCh <- string(out)
	}()
	errCh <- fn()
	w.Close()
	os.Stdout = old
	if err := <-errCh; err != nil {
		t.Fatalf("command failed: %v", err)
	}
	return <-outCh
}

func TestCLIFullFlow(t *testing.T) {
	dir := t.TempDir()
	archive := filepath.Join(dir, "corpus.tdc")

	// compress
	out := capture(t, func() error {
		return cmdCompress(append([]string{"-o", archive}, testdataPaths(t)...))
	})
	if !strings.Contains(out, "compressed 3 documents") {
		t.Errorf("compress output: %q", out)
	}
	if _, err := os.Stat(archive); err != nil {
		t.Fatalf("archive not written: %v", err)
	}

	// stats
	out = capture(t, func() error { return cmdStats([]string{archive}) })
	if !strings.Contains(out, "documents:        3") || !strings.Contains(out, "rules:") {
		t.Errorf("stats output: %q", out)
	}

	// analyze: every task on the DRAM engine (fast) plus word count on NVM.
	for _, task := range []string{"wordcount", "sort", "termvector", "invertedindex", "seqcount", "rankedindex"} {
		out = capture(t, func() error {
			return cmdAnalyze([]string{"-task", task, "-medium", "dram", "-top", "5", archive})
		})
		if strings.TrimSpace(out) == "" {
			t.Errorf("task %s produced no output", task)
		}
	}
	out = capture(t, func() error {
		return cmdAnalyze([]string{"-task", "wordcount", "-top", "3", archive})
	})
	if !strings.Contains(out, "the") {
		t.Errorf("NVM wordcount output: %q", out)
	}

	// inspect -dot
	out = capture(t, func() error { return cmdInspect([]string{"-dot", archive}) })
	if !strings.HasPrefix(out, "digraph tadoc {") {
		t.Errorf("inspect -dot output: %.60q", out)
	}
	out = capture(t, func() error { return cmdInspect([]string{archive}) })
	if !strings.Contains(out, "rules over 3 documents") {
		t.Errorf("inspect output: %q", out)
	}

	// decompress
	outDir := filepath.Join(dir, "out")
	capture(t, func() error { return cmdDecompress([]string{"-dir", outDir, archive}) })
	entries, err := os.ReadDir(outDir)
	if err != nil || len(entries) != 3 {
		t.Fatalf("decompressed %d files, err %v", len(entries), err)
	}
	data, err := os.ReadFile(filepath.Join(outDir, "carroll.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "white rabbit") {
		t.Errorf("decompressed content lost: %.80q", data)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdCompress([]string{"-o", "/dev/null"}); err == nil {
		t.Error("compress with no inputs should fail")
	}
	if err := cmdStats([]string{"/nonexistent.tdc"}); err == nil {
		t.Error("stats on missing archive should fail")
	}
	if err := cmdAnalyze([]string{"-task", "bogus", "/nonexistent.tdc"}); err == nil {
		t.Error("analyze on missing archive should fail")
	}
	if _, err := mediumFromFlag("floppy"); err == nil {
		t.Error("unknown medium should fail")
	}
	for name, want := range map[string]any{"nvm": nil, "dram": nil, "ssd": nil, "hdd": nil} {
		if _, err := mediumFromFlag(name); err != nil {
			t.Errorf("medium %s: %v (%v)", name, err, want)
		}
	}
}
