package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/text-analytics/ntadoc"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/harness"
)

// Ingest flags.  Like loadgen, the ingest figure is excluded from -fig all:
// it measures wall-clock append throughput and query latency under ingest,
// not modeled device time.
var (
	ingestDataset = flag.String("ingestdataset", "B", "ingest: dataset analogue to stream (B = many small documents)")
	ingestDocs    = flag.Int("ingestdocs", 200, "ingest: documents appended after the base build")
	ingestBatch   = flag.Int("ingestbatch", 8, "ingest: documents per append batch")
	ingestShards  = flag.Int("ingestshards", 2, "ingest: shard count of the live engine")
	ingestOut     = flag.String("ingestout", "BENCH_ingest.json", "ingest: result file ('' disables)")
)

// ingestCell is the measured row of BENCH_ingest.json.
type ingestCell struct {
	BaseDocs     int     `json:"base_docs"`
	AppendedDocs int     `json:"appended_docs"`
	Batches      int     `json:"batches"`
	AppendWallMs float64 `json:"append_wall_ms"`
	DocsPerSec   float64 `json:"docs_per_sec"`
	AppendP50Ms  float64 `json:"append_p50_ms"`
	AppendP95Ms  float64 `json:"append_p95_ms"`

	// Query latencies observed by a concurrent reader during the stream.
	Queries    int     `json:"queries_during_ingest"`
	QueryP50Ms float64 `json:"query_p50_ms"`
	QueryP95Ms float64 `json:"query_p95_ms"`

	// Grammar sizes: base alone, base+delta served live, delta merged into
	// the base (compaction), and a from-scratch rebuild over the same docs.
	BaseSymbols       int64   `json:"base_symbols"`
	DeltaSymbols      int64   `json:"delta_symbols"`
	DeltaOverheadPct  float64 `json:"delta_overhead_pct"`
	MergedSymbols     int64   `json:"merged_symbols"`
	RebuildSymbols    int64   `json:"rebuild_symbols"`
	MergedOverheadPct float64 `json:"merged_overhead_pct"`

	BitIdentical bool `json:"bit_identical"`
}

// figIngest measures online ingestion end to end on the public API: a live
// sharded engine takes one append batch at a time while a concurrent reader
// keeps querying, then the delta is compacted and the grammar compared
// against a from-scratch rebuild over the identical document set.
func figIngest(specs []datagen.Spec) error {
	var spec datagen.Spec
	found := false
	for _, s := range specs {
		if s.Name == *ingestDataset {
			spec, found = s, true
		}
	}
	if !found {
		return fmt.Errorf("ingest: unknown dataset %q", *ingestDataset)
	}
	header(fmt.Sprintf("ingest: live appends on dataset %s (%d docs in batches of %d), K=%d",
		spec.Name, *ingestDocs, *ingestBatch, *ingestShards))

	c, err := harness.GetCorpus(spec)
	if err != nil {
		return err
	}
	if len(c.Files) < 2 {
		return fmt.Errorf("ingest: dataset %s has %d files; need at least 2 to stream", spec.Name, len(c.Files))
	}
	appended := *ingestDocs
	if max := len(c.Files) / 2; appended > max {
		appended = max
	}
	base := len(c.Files) - appended

	// Rebuild the public-API dictionary in ID order and render the streamed
	// documents back to text (tokenization round-trips single spaces).
	words := c.Dict.Words()
	dct := ntadoc.NewDictionary()
	for _, w := range words {
		dct.Intern(w)
	}
	names := make([]string, len(c.Files))
	texts := make([]string, len(c.Files))
	for i, f := range c.Files {
		names[i] = fmt.Sprintf("doc%03d", i)
		ws := make([]string, len(f))
		for j, id := range f {
			ws[j] = words[id]
		}
		texts[i] = strings.Join(ws, " ")
	}

	a, err := ntadoc.CompressTokensSharded(c.Files[:base], names[:base], dct, *ingestShards)
	if err != nil {
		return err
	}
	cell := ingestCell{BaseDocs: base, AppendedDocs: appended, BaseSymbols: a.Stats().GrammarSymbols}
	eng, err := ntadoc.NewEngine(a, ntadoc.Options{IngestCapacity: 1 << 22})
	if err != nil {
		return err
	}
	defer eng.Close()

	// Concurrent reader: queries run against live base+delta snapshots the
	// whole time the stream is landing (appends never block queries).
	stop := make(chan struct{})
	done := make(chan []time.Duration)
	go func() {
		var lats []time.Duration
		for {
			select {
			case <-stop:
				done <- lats
				return
			default:
			}
			t0 := time.Now()
			if _, err := eng.WordCount(); err == nil {
				lats = append(lats, time.Since(t0))
			}
		}
	}()

	var appendLats []time.Duration
	t0 := time.Now()
	for lo := base; lo < len(c.Files); lo += *ingestBatch {
		hi := lo + *ingestBatch
		if hi > len(c.Files) {
			hi = len(c.Files)
		}
		docs := make([]ntadoc.Document, 0, hi-lo)
		for i := lo; i < hi; i++ {
			docs = append(docs, ntadoc.Document{Name: names[i], Text: texts[i]})
		}
		tb := time.Now()
		if err := eng.Append(docs); err != nil {
			close(stop)
			<-done
			return fmt.Errorf("ingest: append batch at doc %d: %w", lo, err)
		}
		appendLats = append(appendLats, time.Since(tb))
	}
	wall := time.Since(t0)
	close(stop)
	queryLats := <-done

	st := eng.IngestStats()
	cell.Batches = int(st.Batches)
	cell.DeltaSymbols = st.DeltaSymbols
	cell.AppendWallMs = msRound(wall)
	cell.DocsPerSec = math.Round(float64(appended)/wall.Seconds()*10) / 10
	cell.AppendP50Ms, cell.AppendP95Ms = latPair(appendLats)
	cell.Queries = len(queryLats)
	cell.QueryP50Ms, cell.QueryP95Ms = latPair(queryLats)
	cell.DeltaOverheadPct = pctRound(float64(cell.DeltaSymbols) / float64(cell.BaseSymbols))

	// Delta vs rebuild: fold the archive's delta into the base (the offline
	// form of what Compact does live) and rebuild from scratch for the floor.
	if err := eng.Compact(); err != nil {
		return fmt.Errorf("ingest: compact: %w", err)
	}
	live, err := eng.WordCount()
	if err != nil {
		return fmt.Errorf("ingest: post-compaction query: %w", err)
	}
	var buf strings.Builder
	if _, err := a.WriteTo(&buf); err != nil {
		return err
	}
	folded, err := ntadoc.ReadArchive(strings.NewReader(buf.String()))
	if err != nil {
		return err
	}
	cell.MergedSymbols = folded.Stats().GrammarSymbols

	dct2 := ntadoc.NewDictionary()
	for _, w := range words {
		dct2.Intern(w)
	}
	rebuilt, err := ntadoc.CompressTokensSharded(c.Files, names, dct2, *ingestShards)
	if err != nil {
		return err
	}
	cell.RebuildSymbols = rebuilt.Stats().GrammarSymbols
	cell.MergedOverheadPct = pctRound(float64(cell.MergedSymbols)/float64(cell.RebuildSymbols) - 1)

	reng, err := ntadoc.NewEngine(rebuilt, ntadoc.Options{})
	if err != nil {
		return err
	}
	defer reng.Close()
	want, err := reng.WordCount()
	if err != nil {
		return err
	}
	cell.BitIdentical = reflect.DeepEqual(live, want)
	if !cell.BitIdentical {
		return fmt.Errorf("ingest: post-compaction result differs from a from-scratch rebuild")
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "appended\tthroughput\tappend p50/p95\tquery p50/p95 (n)\tdelta overhead\tmerged vs rebuild\tbit-identical")
	fmt.Fprintf(w, "%d docs / %d batches\t%.1f docs/s\t%.2f / %.2f ms\t%.2f / %.2f ms (%d)\t+%.1f%%\t%+.1f%%\t%v\n",
		appended, cell.Batches, cell.DocsPerSec,
		cell.AppendP50Ms, cell.AppendP95Ms,
		cell.QueryP50Ms, cell.QueryP95Ms, cell.Queries,
		cell.DeltaOverheadPct, cell.MergedOverheadPct, cell.BitIdentical)
	if err := w.Flush(); err != nil {
		return err
	}
	if *ingestOut == "" {
		return nil
	}
	return writeIngestJSON(*ingestOut, spec.Name, cell)
}

// latPair returns the p50 and p95 of the samples in rounded milliseconds.
func latPair(lats []time.Duration) (p50, p95 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p int) time.Duration {
		i := p * len(sorted) / 100
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return msRound(at(50)), msRound(at(95))
}

func pctRound(f float64) float64 { return math.Round(f*1000) / 10 }

func writeIngestJSON(path, dataset string, cell ingestCell) error {
	doc := struct {
		Benchmark   string     `json:"benchmark"`
		Date        string     `json:"date"`
		Machine     string     `json:"machine"`
		Methodology string     `json:"methodology"`
		Dataset     string     `json:"dataset"`
		Cell        ingestCell `json:"cell"`
	}{
		Benchmark: "benchfig -fig ingest",
		Date:      time.Now().Format("2006-01-02"),
		Machine: fmt.Sprintf("shared Linux container (nproc=%d); wall-clock latencies are noisy under external load",
			runtime.NumCPU()),
		Methodology: fmt.Sprintf("A %d-shard engine is built over the first part of dataset %s, then the rest of "+
			"the corpus is streamed in through the public Append API (durable batches on the simulated NVM append "+
			"log) while one concurrent reader keeps running WordCount against live base+delta snapshots.  After the "+
			"stream, the delta is compacted and the grammar compared against a from-scratch rebuild over the "+
			"identical document set — merged_overhead_pct is the compression price of incremental inference, and "+
			"bit_identical asserts the compacted engine returns byte-identical results to the rebuild.  Latencies "+
			"are wall-clock and vary with machine load; symbol counts and bit-identity are deterministic.",
			*ingestShards, dataset),
		Dataset: dataset,
		Cell:    cell,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Sync()
}
