package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/loadgen"
)

// Loadgen flags.  The loadgen figure is excluded from -fig all: it measures
// wall-clock serving latency, not modeled device time, so it only means
// something when run deliberately.
var (
	loadWorkers  = flag.Int("loadworkers", 64, "loadgen: peak concurrent client sessions")
	loadRequests = flag.Int("loadrequests", 512, "loadgen: total requests per load point")
	loadDataset  = flag.String("loaddataset", "A", "loadgen: dataset analogue to serve")
	loadOut      = flag.String("loadout", "BENCH_loadgen.json", "loadgen: result file ('' disables)")
)

// loadgenCell is one JSON row of BENCH_loadgen.json.
type loadgenCell struct {
	Workers       int     `json:"workers"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	WallMs        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	CacheHitPct   float64 `json:"cache_hit_pct"`
	CoalescedPct  float64 `json:"coalesced_pct"`
}

func figLoadgen(specs []datagen.Spec) error {
	var spec datagen.Spec
	found := false
	for _, s := range specs {
		if s.Name == *loadDataset {
			spec, found = s, true
		}
	}
	if !found {
		return fmt.Errorf("loadgen: unknown dataset %q", *loadDataset)
	}
	header(fmt.Sprintf("loadgen: serving-layer throughput/latency, dataset %s, %d requests per point", spec.Name, *loadRequests))

	counts := []int{1, 8, *loadWorkers}
	cells := make([]loadgenCell, 0, len(counts))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\tthroughput\tp50\tp95\tp99\tmax\tcache\tcoalesced\terrors")
	seen := map[int]bool{}
	for _, w := range counts {
		if w < 1 || w > *loadWorkers || seen[w] {
			continue
		}
		seen[w] = true
		res, err := loadgen.Run(spec, loadgen.Options{
			Workers:  w,
			Requests: *loadRequests,
			Replicas: 1,
		})
		if err != nil {
			return fmt.Errorf("loadgen (workers=%d): %w", w, err)
		}
		fmt.Fprintf(tw, "%d\t%.0f req/s\t%s\t%s\t%s\t%s\t%.0f%%\t%.0f%%\t%d\n",
			res.Workers, res.Throughput, res.P50.Round(10*time.Microsecond),
			res.P95.Round(10*time.Microsecond), res.P99.Round(10*time.Microsecond),
			res.Max.Round(10*time.Microsecond),
			res.CacheHitRate*100, res.CoalescedRate*100, res.Errors)
		cells = append(cells, loadgenCell{
			Workers:       res.Workers,
			Requests:      res.Requests,
			Errors:        res.Errors,
			WallMs:        msRound(res.Wall),
			ThroughputRPS: math.Round(res.Throughput*10) / 10,
			P50Ms:         msRound(res.P50),
			P95Ms:         msRound(res.P95),
			P99Ms:         msRound(res.P99),
			MaxMs:         msRound(res.Max),
			CacheHitPct:   math.Round(res.CacheHitRate*1000) / 10,
			CoalescedPct:  math.Round(res.CoalescedRate*1000) / 10,
		})
	}
	tw.Flush()
	if *loadOut == "" {
		return nil
	}
	return writeLoadgenJSON(*loadOut, spec.Name, cells)
}

// msRound is ms() rounded to two decimals for the JSON cells.
func msRound(d time.Duration) float64 {
	return math.Round(ms(d)*100) / 100
}

func writeLoadgenJSON(path, dataset string, cells []loadgenCell) error {
	doc := struct {
		Benchmark   string        `json:"benchmark"`
		Date        string        `json:"date"`
		Machine     string        `json:"machine"`
		Methodology string        `json:"methodology"`
		Dataset     string        `json:"dataset"`
		Cells       []loadgenCell `json:"cells"`
	}{
		Benchmark: "benchfig -fig loadgen",
		Date:      time.Now().Format("2006-01-02"),
		Machine: fmt.Sprintf("shared Linux container (nproc=%d); wall-clock latencies are noisy under external load",
			runtime.NumCPU()),
		Methodology: fmt.Sprintf("The serving layer (internal/server: session pool, singleflight coalescer, "+
			"LRU result cache) stood up over a 2-shard replicated archive of dataset %s and driven over real "+
			"loopback HTTP by N concurrent clients cycling through the default mix (each task individually plus "+
			"the fully fused six-task batch).  Unlike the modeled figures, latencies here are client-observed "+
			"wall-clock, so absolute numbers vary with the machine; the shape (cache-dominated p50, "+
			"traversal-bound tail) is the signal.", dataset),
		Dataset: dataset,
		Cells:   cells,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return f.Sync()
}
