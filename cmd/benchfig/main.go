// Command benchfig regenerates every table and figure of the paper's
// evaluation (§VI) on the synthetic dataset analogues:
//
//	benchfig -fig 5a        Fig 5(a): N-TADOC (phase-level) vs uncompressed on NVM
//	benchfig -fig 5b        Fig 5(b): N-TADOC (operation-level) vs uncompressed
//	benchfig -fig 6         Fig 6: N-TADOC vs TADOC on DRAM
//	benchfig -fig 7         Fig 7: N-TADOC on NVM vs the same engine on SSD/HDD
//	benchfig -fig dram      §VI-C: DRAM space savings vs TADOC
//	benchfig -fig table2    Table II: init/traversal time breakdown (C, D)
//	benchfig -fig phases    §VI-D: per-phase speedups (C, D)
//	benchfig -fig traversal §VI-E: top-down vs bottom-up on dataset B
//	benchfig -fig cross     §III-B/§VI-F: naive NVM port and cross-evaluation
//	benchfig -fig datasets  Table I analogue: dataset statistics
//	benchfig -fig prune     §IV-B: grammar redundancy eliminated by pruning
//	benchfig -fig fused     fused multi-op batch vs sequential single-op runs
//	benchfig -fig shards    sharded engine: parallel build + scatter-gather batch vs K=1
//	benchfig -fig failover  replicated shards: failover overhead + replica-read tails
//	benchfig -fig loadgen   serving layer: daemon throughput + latency percentiles
//	benchfig -fig ingest    online ingestion: append throughput, query latency under ingest
//	benchfig -fig all       everything above except loadgen and ingest (wall-clock, not modeled)
//
// -scale shrinks the corpora for quick runs (default 1.0 = the scaled-down
// analogues described in DESIGN.md).  Reported times are modeled times from
// the device cost model plus modeled CPU; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/harness"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/tadoc"
)

func main() {
	fig := flag.String("fig", "all", "figure/table to regenerate (5a 5b 6 7 dram table2 phases traversal cross datasets prune all)")
	scale := flag.Float64("scale", 1.0, "corpus scale factor in (0,1]")
	parallel := flag.Int("parallel", 1, "experiment cells to run concurrently (modeled figures are unaffected; only wall-clock changes)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	benchrepeat := flag.Int("benchrepeat", 1, "repeat the selected figures this many times (wall-clock measurement)")
	flag.Parse()

	// Batch tool: the grid churns through large short-lived device images,
	// so relax the GC target unless the user asked for something specific.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	harness.SetParallelism(*parallel)

	specs := make([]datagen.Spec, len(datagen.Datasets))
	for i, s := range datagen.Datasets {
		specs[i] = s.Scaled(*scale)
	}

	runners := map[string]func([]datagen.Spec) error{
		"5a":        fig5a,
		"5b":        fig5b,
		"6":         fig6,
		"7":         fig7,
		"dram":      figDRAM,
		"table2":    figTable2,
		"phases":    figPhases,
		"traversal": figTraversal,
		"cross":     figCross,
		"datasets":  figDatasets,
		"prune":     figPrune,
		"endurance": figEndurance,
		"fused":     figFused,
		"shards":    figShards,
		"failover":  figFailover,
		// loadgen and ingest are deliberately not in the -fig all order: they
		// measure wall-clock behavior, not modeled device time.
		"loadgen": figLoadgen,
		"ingest":  figIngest,
	}
	order := []string{"datasets", "prune", "5a", "5b", "6", "7", "dram", "table2", "phases", "traversal", "cross", "endurance", "fused", "shards", "failover"}
	skipped := []string{"loadgen", "ingest"}

	for rep := 0; rep < *benchrepeat; rep++ {
		if *fig == "all" {
			fmt.Printf("skipping %s (wall-clock figures; run each with -fig explicitly)\n",
				strings.Join(skipped, ", "))
			for _, name := range order {
				if err := runners[name](specs); err != nil {
					fatal(err)
				}
			}
			continue
		}
		run, ok := runners[*fig]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q", *fig))
		}
		if err := run(specs); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// speedupMatrix runs every (dataset, task) cell with both runners and prints
// other/self speedups.  Cells run up to -parallel at a time; results are
// stored by cell index and printed serially afterwards, so the output is
// byte-identical to a serial run.
func speedupMatrix(title string, specs []datagen.Spec,
	self func(*harness.Corpus, analytics.Task) (harness.Result, error),
	other func(*harness.Corpus, analytics.Task) (harness.Result, error)) error {
	header(title)
	tasks := analytics.Tasks
	sps := make([]float64, len(tasks)*len(specs))
	err := harness.ForEachCell(len(sps), func(i int) error {
		task, spec := tasks[i/len(specs)], specs[i%len(specs)]
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		rs, err := self(c, task)
		if err != nil {
			return err
		}
		ro, err := other(c, task)
		if err != nil {
			return err
		}
		sps[i] = rs.Speedup(ro)
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprint(w, "task")
	for _, s := range specs {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w, "\tmean")
	var all []float64
	for ti, task := range tasks {
		fmt.Fprintf(w, "%s", task)
		row := sps[ti*len(specs) : (ti+1)*len(specs)]
		for _, sp := range row {
			fmt.Fprintf(w, "\t%.2fx", sp)
		}
		all = append(all, row...)
		fmt.Fprintf(w, "\t%.2fx\n", harness.GeoMean(row))
	}
	fmt.Fprintf(w, "overall\t\t\t\t\t%.2fx\n", harness.GeoMean(all))
	return w.Flush()
}

func fig5a(specs []datagen.Spec) error {
	return speedupMatrix(
		"Fig 5(a): N-TADOC (phase-level) speedup over uncompressed text analytics on NVM",
		specs,
		func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
			return harness.RunNTADOC(c, t, core.Options{})
		},
		func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
			return harness.RunUncompressed(c, t, nvm.KindNVM)
		},
	)
}

func fig5b(specs []datagen.Spec) error {
	return speedupMatrix(
		"Fig 5(b): N-TADOC (operation-level) speedup over uncompressed text analytics on NVM",
		specs,
		func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
			return harness.RunNTADOC(c, t, core.Options{Persistence: core.OpLevel})
		},
		func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
			return harness.RunUncompressed(c, t, nvm.KindNVM)
		},
	)
}

func fig6(specs []datagen.Spec) error {
	// Reported the paper's way: how many times slower N-TADOC is than the
	// DRAM upper bound (TADOC) — slowdown = ntadoc/tadoc.
	header("Fig 6: N-TADOC slowdown relative to TADOC on DRAM (1.0 = parity)")
	tasks := analytics.Tasks
	slows := make([]float64, len(tasks)*len(specs))
	err := harness.ForEachCell(len(slows), func(i int) error {
		task, spec := tasks[i/len(specs)], specs[i%len(specs)]
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		nt, err := harness.RunNTADOC(c, task, core.Options{})
		if err != nil {
			return err
		}
		td, err := harness.RunTADOC(c, task, tadoc.Auto)
		if err != nil {
			return err
		}
		slows[i] = td.Speedup(nt) // tadoc faster => >1
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprint(w, "task")
	for _, s := range specs {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w, "\tmean")
	var all []float64
	for ti, task := range tasks {
		fmt.Fprintf(w, "%s", task)
		row := slows[ti*len(specs) : (ti+1)*len(specs)]
		for _, slow := range row {
			fmt.Fprintf(w, "\t%.2fx", slow)
		}
		all = append(all, row...)
		fmt.Fprintf(w, "\t%.2fx\n", harness.GeoMean(row))
	}
	fmt.Fprintf(w, "overall\t\t\t\t\t%.2fx\n", harness.GeoMean(all))
	return w.Flush()
}

func fig7(specs []datagen.Spec) error {
	for _, kind := range []nvm.Kind{nvm.KindSSD, nvm.KindHDD} {
		err := speedupMatrix(
			fmt.Sprintf("Fig 7: N-TADOC on NVM speedup over N-TADOC on %s (page cache = 20%% of dataset)", kind),
			specs,
			func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
				return harness.RunNTADOC(c, t, core.Options{})
			},
			func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
				return harness.RunNTADOC(c, t, core.Options{Kind: kind})
			},
		)
		if err != nil {
			return err
		}
	}
	return nil
}

func figDRAM(specs []datagen.Spec) error {
	header("§VI-C: DRAM space savings of N-TADOC vs TADOC (RSS analogue)")
	tasks := analytics.Tasks
	type dramCell struct {
		tdBytes, ntBytes int64
		saving           float64
	}
	cells := make([]dramCell, len(tasks)*len(specs))
	err := harness.ForEachCell(len(cells), func(i int) error {
		task, spec := tasks[i/len(specs)], specs[i%len(specs)]
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		td, err := harness.RunTADOC(c, task, tadoc.Auto)
		if err != nil {
			return err
		}
		nt, err := harness.RunNTADOC(c, task, core.Options{})
		if err != nil {
			return err
		}
		cells[i] = dramCell{
			tdBytes: td.DRAMBytes,
			ntBytes: nt.DRAMBytes,
			saving:  1 - float64(nt.DRAMBytes)/float64(td.DRAMBytes),
		}
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "task\tdataset\tTADOC DRAM\tN-TADOC DRAM\tsaving")
	perDataset := map[string][]float64{}
	perTask := map[analytics.Task][]float64{}
	var all []float64
	for ti, task := range tasks {
		for si, spec := range specs {
			cell := cells[ti*len(specs)+si]
			perDataset[spec.Name] = append(perDataset[spec.Name], cell.saving)
			perTask[task] = append(perTask[task], cell.saving)
			all = append(all, cell.saving)
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.1f%%\n",
				task, spec.Name, fmtBytes(cell.tdBytes), fmtBytes(cell.ntBytes), cell.saving*100)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: flush savings table: %v\n", err)
	}
	fmt.Println("per dataset:")
	for _, spec := range specs {
		fmt.Printf("  %s: %.1f%%\n", spec.Name, mean(perDataset[spec.Name])*100)
	}
	fmt.Println("per task:")
	for _, task := range analytics.Tasks {
		fmt.Printf("  %s: %.1f%%\n", task, mean(perTask[task])*100)
	}
	fmt.Printf("average saving: %.1f%%\n", mean(all)*100)
	return nil
}

func figTable2(specs []datagen.Spec) error {
	header("Table II: N-TADOC time breakdown (modeled milliseconds)")
	var sel []datagen.Spec
	for _, spec := range specs {
		if spec.Name == "C" || spec.Name == "D" {
			sel = append(sel, spec)
		}
	}
	tasks := analytics.Tasks
	cells := make([]harness.Result, len(sel)*len(tasks))
	err := harness.ForEachCell(len(cells), func(i int) error {
		spec, task := sel[i/len(tasks)], tasks[i%len(tasks)]
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		cells[i], err = harness.RunNTADOC(c, task, core.Options{})
		return err
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tbenchmark\tinitial phase\ttraversal phase")
	for si, spec := range sel {
		for ti, task := range tasks {
			nt := cells[si*len(tasks)+ti]
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\n",
				spec.Name, task, ms(nt.Init), ms(nt.Traversal))
		}
	}
	return w.Flush()
}

func figPhases(specs []datagen.Spec) error {
	header("§VI-D: per-phase speedups over uncompressed (datasets C and D)")
	var sel []datagen.Spec
	for _, spec := range specs {
		if spec.Name == "C" || spec.Name == "D" {
			sel = append(sel, spec)
		}
	}
	tasks := analytics.Tasks
	type phaseCell struct{ is, ts float64 }
	cells := make([]phaseCell, len(sel)*len(tasks))
	err := harness.ForEachCell(len(cells), func(i int) error {
		spec, task := sel[i/len(tasks)], tasks[i%len(tasks)]
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		nt, err := harness.RunNTADOC(c, task, core.Options{})
		if err != nil {
			return err
		}
		un, err := harness.RunUncompressed(c, task, nvm.KindNVM)
		if err != nil {
			return err
		}
		cells[i] = phaseCell{is: ratio(un.Init, nt.Init), ts: ratio(un.Traversal, nt.Traversal)}
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tbenchmark\tinit speedup\ttraversal speedup")
	for si, spec := range sel {
		var initS, travS []float64
		for ti, task := range tasks {
			cell := cells[si*len(tasks)+ti]
			initS = append(initS, cell.is)
			travS = append(travS, cell.ts)
			fmt.Fprintf(w, "%s\t%s\t%.2fx\t%.2fx\n", spec.Name, task, cell.is, cell.ts)
		}
		fmt.Fprintf(w, "%s\taverage\t%.2fx\t%.2fx\n", spec.Name,
			harness.GeoMean(initS), harness.GeoMean(travS))
	}
	return w.Flush()
}

func figTraversal(specs []datagen.Spec) error {
	header("§VI-E: traversal strategies on dataset B (many small files)")
	var specB datagen.Spec
	for _, s := range specs {
		if s.Name == "B" {
			specB = s
		}
	}
	// The top-down penalty grows with file count (the paper reports
	// ~1000x at its full 134k-file scale); show the trend across three
	// file counts.
	fracs := []int{4, 2, 1}
	tasks := []analytics.Task{analytics.TermVector, analytics.InvertedIndex}
	type travCell struct{ td, bu harness.Result }
	cells := make([]travCell, len(fracs)*len(tasks))
	err := harness.ForEachCell(len(cells), func(i int) error {
		spec := specB
		spec.Files = specB.Files / fracs[i/len(tasks)]
		task := tasks[i%len(tasks)]
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		td, err := harness.RunNTADOC(c, task, core.Options{Strategy: core.TopDown})
		if err != nil {
			return err
		}
		bu, err := harness.RunNTADOC(c, task, core.Options{Strategy: core.BottomUp})
		if err != nil {
			return err
		}
		cells[i] = travCell{td: td, bu: bu}
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "files\tbenchmark\ttop-down traversal\tbottom-up traversal\tbottom-up advantage")
	for fi, frac := range fracs {
		for ti, task := range tasks {
			cell := cells[fi*len(tasks)+ti]
			fmt.Fprintf(w, "%d\t%s\t%.2f ms\t%.2f ms\t%.1fx\n",
				specB.Files/frac, task, ms(cell.td.Traversal), ms(cell.bu.Traversal),
				ratio(cell.td.Traversal, cell.bu.Traversal))
		}
	}
	return w.Flush()
}

func figCross(specs []datagen.Spec) error {
	header("§III-B / §VI-F: naive NVM port and cross-evaluation")
	// The §III-B naive port: std structures pointed at NVM through a
	// transactional allocator — untrimmed bodies, growable tables, no
	// layout control, and a PMDK-style transaction per mutation.
	naive := core.Options{
		NoPruning: true, NoBounds: true, Scatter: true,
		Persistence: core.OpLevel, PerOpCommit: true,
	}
	type crossCell struct{ slow, speed float64 }
	cells := make([]crossCell, len(specs))
	err := harness.ForEachCell(len(cells), func(i int) error {
		c, err := harness.GetCorpus(specs[i])
		if err != nil {
			return err
		}
		task := analytics.WordCount
		np, err := harness.RunNTADOC(c, task, naive)
		if err != nil {
			return err
		}
		td, err := harness.RunTADOC(c, task, tadoc.Auto)
		if err != nil {
			return err
		}
		nt, err := harness.RunNTADOC(c, task, core.Options{})
		if err != nil {
			return err
		}
		cells[i] = crossCell{slow: td.Speedup(np), speed: nt.Speedup(np)}
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tnaive port slowdown vs TADOC\tN-TADOC speedup vs naive port")
	var slows, speeds []float64
	for i, spec := range specs {
		slows = append(slows, cells[i].slow)
		speeds = append(speeds, cells[i].speed)
		fmt.Fprintf(w, "%s\t%.2fx\t%.2fx\n", spec.Name, cells[i].slow, cells[i].speed)
	}
	fmt.Fprintf(w, "mean\t%.2fx\t%.2fx\n", harness.GeoMean(slows), harness.GeoMean(speeds))
	return w.Flush()
}

func figDatasets(specs []datagen.Spec) error {
	header("Table I analogue: dataset statistics (scaled synthetic corpora)")
	stats := make([]cfg.Stats, len(specs))
	err := harness.ForEachCell(len(specs), func(i int) error {
		c, err := harness.GetCorpus(specs[i])
		if err != nil {
			return err
		}
		stats[i] = c.G.ComputeStats()
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tfile#\trule#\tvocabulary\ttokens\tcompressed symbols\tratio")
	for i, spec := range specs {
		st := stats[i]
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.3f\n",
			spec.Name, st.Files, st.Rules, st.Vocabulary, st.Expanded,
			st.BodySymbols, float64(st.BodySymbols)/float64(st.Expanded))
	}
	return w.Flush()
}

func figPrune(specs []datagen.Spec) error {
	header("§IV-B: grammar redundancy eliminated by pruning")
	type pruneCell struct{ raw, pruned int64 }
	cells := make([]pruneCell, len(specs))
	err := harness.ForEachCell(len(specs), func(i int) error {
		c, err := harness.GetCorpus(specs[i])
		if err != nil {
			return err
		}
		raw, pruned := pruneSizes(c.G)
		cells[i] = pruneCell{raw: raw, pruned: pruned}
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\traw body bytes\tpruned body bytes\teliminated")
	for i, spec := range specs {
		raw, pruned := cells[i].raw, cells[i].pruned
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f%%\n",
			spec.Name, fmtBytes(raw), fmtBytes(pruned), (1-float64(pruned)/float64(raw))*100)
	}
	return w.Flush()
}

// figEndurance quantifies the §VII claim that N-TADOC's design reduces NVM
// write traffic (improving media endurance): media-granule writes per word
// count, for N-TADOC under both persistence strategies and the naive port.
func figEndurance(specs []datagen.Spec) error {
	header("§VII: NVM write traffic per word-count run (media granules written)")
	naive := core.Options{
		NoPruning: true, NoBounds: true, Scatter: true,
		Persistence: core.OpLevel, PerOpCommit: true,
	}
	type endCell struct{ pl, ol, nv int64 }
	cells := make([]endCell, len(specs))
	err := harness.ForEachCell(len(cells), func(i int) error {
		c, err := harness.GetCorpus(specs[i])
		if err != nil {
			return err
		}
		writes := func(opts core.Options) (int64, error) {
			r, err := harness.RunNTADOC(c, analytics.WordCount, opts)
			if err != nil {
				return 0, err
			}
			// Granules made durable: flush traffic is what wears media.
			return r.Device.FlushedBytes / 256, nil
		}
		var cell endCell
		if cell.pl, err = writes(core.Options{}); err != nil {
			return err
		}
		if cell.ol, err = writes(core.Options{Persistence: core.OpLevel}); err != nil {
			return err
		}
		if cell.nv, err = writes(naive); err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tN-TADOC phase-level\tN-TADOC op-level\tnaive port\tnaive amplification")
	for i, spec := range specs {
		cell := cells[i]
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1fx\n",
			spec.Name, cell.pl, cell.ol, cell.nv, float64(cell.nv)/float64(cell.pl))
	}
	return w.Flush()
}

// figFused quantifies the operation kernel's fused execution: all six tasks
// in one traversal versus six back-to-back single-op runs on an identical
// engine — modeled traversal time and device read traffic.
func figFused(specs []datagen.Spec) error {
	header("Fused execution: all six tasks, one traversal vs six sequential runs")
	ops := analytics.Ops()
	cells := make([]harness.FusedCell, len(specs))
	err := harness.ForEachCell(len(cells), func(i int) error {
		c, err := harness.GetCorpus(specs[i])
		if err != nil {
			return err
		}
		cells[i], err = harness.RunFusedComparison(c, ops, core.Options{})
		return err
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tsequential\tfused\tspeedup\tseq reads\tfused reads\tread reduction")
	var speedups, reductions []float64
	for i, spec := range specs {
		cell := cells[i]
		speedup := ratio(cell.SeqNanos, cell.FusedNanos)
		reduction := 1 - float64(cell.FusedReads)/float64(cell.SeqReads)
		speedups = append(speedups, speedup)
		reductions = append(reductions, reduction)
		fmt.Fprintf(w, "%s\t%.2f ms\t%.2f ms\t%.2fx\t%d\t%d\t%.1f%%\n",
			spec.Name, ms(cell.SeqNanos), ms(cell.FusedNanos), speedup,
			cell.SeqReads, cell.FusedReads, reduction*100)
	}
	fmt.Fprintf(w, "mean\t\t\t%.2fx\t\t\t%.1f%%\n",
		harness.GeoMean(speedups), mean(reductions)*100)
	return w.Flush()
}

// figShards quantifies the sharded engine: the corpus split into K
// independent shards, built in parallel, with the fused six-task batch
// scattered across the shards and gathered.  Speedups are modeled
// critical-path times relative to K=1; the compression delta is the growth
// of the total grammar, the price of not sharing redundancy across shards.
func figShards(specs []datagen.Spec) error {
	header("Shard scaling: parallel build and scatter-gather fused batch (vs K=1)")
	var sel []datagen.Spec
	for _, spec := range specs {
		if spec.Name == "C" || spec.Name == "D" {
			sel = append(sel, spec)
		}
	}
	ks := []int{1, 2, 4}
	ops := analytics.Ops()
	cells := make([]harness.ShardCell, len(sel)*len(ks))
	err := harness.ForEachCell(len(cells), func(i int) error {
		spec, k := sel[i/len(ks)], ks[i%len(ks)]
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		cells[i], err = harness.RunShardScaling(c, ops, k, core.Options{})
		return err
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tshards\tbuild\tbatch traversal\tbuild speedup\tbatch speedup\traw symbols\tdedup symbols\tshared rules\tdedup delta")
	for si, spec := range sel {
		base := cells[si*len(ks)]
		for ki := range ks {
			cell := cells[si*len(ks)+ki]
			fmt.Fprintf(w, "%s\t%d\t%.2f ms\t%.2f ms\t%.2fx\t%.2fx\t%d\t%d\t%d\t%+.1f%%\n",
				spec.Name, cell.K, ms(cell.BuildTotal), ms(cell.TravTotal),
				ratio(base.BuildTotal, cell.BuildTotal), ratio(base.TravTotal, cell.TravTotal),
				cell.Symbols, cell.DedupSymbols, cell.SharedRules,
				(float64(cell.DedupSymbols)/float64(base.DedupSymbols)-1)*100)
		}
	}
	return w.Flush()
}

// figFailover quantifies the replication layer: the fused six-task batch on
// a replicated K-shard engine run healthy, run with one primary killed
// mid-batch and masked by follower failover, and run with replica reads
// splitting each shard's batch across primary and follower images.  Each
// cell internally verifies all three runs return bit-identical results.
func figFailover(specs []datagen.Spec) error {
	header("Failover: replicated shards, masked primary death, replica-read tails")
	var sel []datagen.Spec
	for _, spec := range specs {
		if spec.Name == "C" || spec.Name == "D" {
			sel = append(sel, spec)
		}
	}
	ks := []int{2, 4}
	ops := analytics.Ops()
	cells := make([]harness.FailoverCell, len(sel)*len(ks))
	err := harness.ForEachCell(len(cells), func(i int) error {
		spec, k := sel[i/len(ks)], ks[i%len(ks)]
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		cells[i], err = harness.RunFailoverBench(c, ops, k, core.Options{})
		return err
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "dataset\tshards\thealthy\tfailover\toverhead\trecoveries\treplica batch\ttail\treplica tail\ttail reduction")
	for si, spec := range sel {
		for ki := range ks {
			cell := cells[si*len(ks)+ki]
			fmt.Fprintf(w, "%s\t%d\t%.2f ms\t%.2f ms\t%.2fx\t%d\t%.2f ms\t%.2f ms\t%.2f ms\t%.1f%%\n",
				spec.Name, cell.K, ms(cell.Healthy), ms(cell.Failover),
				ratio(cell.Failover, cell.Healthy), cell.Recoveries,
				ms(cell.ReplicaRead),
				ms(time.Duration(cell.TailPlain)), ms(time.Duration(cell.TailReplica)),
				(1-float64(cell.TailReplica)/float64(cell.TailPlain))*100)
		}
	}
	return w.Flush()
}

// pruneSizes computes the byte footprint of raw versus pruned rule bodies,
// mirroring the engine's Algorithm 1 compact encoding: 4 bytes per raw
// symbol versus, per distinct (id, freq) pair, 4 bytes plus 4 more only
// when the frequency exceeds one, plus a 4-byte length prefix per rule.
func pruneSizes(g *cfg.Grammar) (raw, pruned int64) {
	for _, body := range g.Rules {
		raw += int64(len(body)) * 4
		subs := map[uint32]int{}
		words := map[uint32]int{}
		for _, s := range body {
			switch {
			case s.IsRule():
				subs[s.RuleIndex()]++
			case s.IsWord():
				words[s.WordID()]++
			}
		}
		pruned += 4
		for _, f := range subs {
			pruned += 4
			if f > 1 {
				pruned += 4
			}
		}
		for _, f := range words {
			pruned += 4
			if f > 1 {
				pruned += 4
			}
		}
	}
	return raw, pruned
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
