// Command benchfig regenerates every table and figure of the paper's
// evaluation (§VI) on the synthetic dataset analogues:
//
//	benchfig -fig 5a        Fig 5(a): N-TADOC (phase-level) vs uncompressed on NVM
//	benchfig -fig 5b        Fig 5(b): N-TADOC (operation-level) vs uncompressed
//	benchfig -fig 6         Fig 6: N-TADOC vs TADOC on DRAM
//	benchfig -fig 7         Fig 7: N-TADOC on NVM vs the same engine on SSD/HDD
//	benchfig -fig dram      §VI-C: DRAM space savings vs TADOC
//	benchfig -fig table2    Table II: init/traversal time breakdown (C, D)
//	benchfig -fig phases    §VI-D: per-phase speedups (C, D)
//	benchfig -fig traversal §VI-E: top-down vs bottom-up on dataset B
//	benchfig -fig cross     §III-B/§VI-F: naive NVM port and cross-evaluation
//	benchfig -fig datasets  Table I analogue: dataset statistics
//	benchfig -fig prune     §IV-B: grammar redundancy eliminated by pruning
//	benchfig -fig all       everything above
//
// -scale shrinks the corpora for quick runs (default 1.0 = the scaled-down
// analogues described in DESIGN.md).  Reported times are modeled times from
// the device cost model plus modeled CPU; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/datagen"
	"github.com/text-analytics/ntadoc/internal/harness"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/tadoc"
)

func main() {
	fig := flag.String("fig", "all", "figure/table to regenerate (5a 5b 6 7 dram table2 phases traversal cross datasets prune all)")
	scale := flag.Float64("scale", 1.0, "corpus scale factor in (0,1]")
	flag.Parse()

	specs := make([]datagen.Spec, len(datagen.Datasets))
	for i, s := range datagen.Datasets {
		specs[i] = s.Scaled(*scale)
	}

	runners := map[string]func([]datagen.Spec) error{
		"5a":        fig5a,
		"5b":        fig5b,
		"6":         fig6,
		"7":         fig7,
		"dram":      figDRAM,
		"table2":    figTable2,
		"phases":    figPhases,
		"traversal": figTraversal,
		"cross":     figCross,
		"datasets":  figDatasets,
		"prune":     figPrune,
		"endurance": figEndurance,
	}
	order := []string{"datasets", "prune", "5a", "5b", "6", "7", "dram", "table2", "phases", "traversal", "cross", "endurance"}

	if *fig == "all" {
		for _, name := range order {
			if err := runners[name](specs); err != nil {
				fatal(err)
			}
		}
		return
	}
	run, ok := runners[*fig]
	if !ok {
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
	if err := run(specs); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n== %s ==\n", title)
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// speedupMatrix runs every (dataset, task) cell with both runners and prints
// other/self speedups.
func speedupMatrix(title string, specs []datagen.Spec,
	self func(*harness.Corpus, analytics.Task) (harness.Result, error),
	other func(*harness.Corpus, analytics.Task) (harness.Result, error)) error {
	header(title)
	w := newTab()
	fmt.Fprint(w, "task")
	for _, s := range specs {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w, "\tmean")
	var all []float64
	for _, task := range analytics.Tasks {
		fmt.Fprintf(w, "%s", task)
		var row []float64
		for _, spec := range specs {
			c, err := harness.GetCorpus(spec)
			if err != nil {
				return err
			}
			rs, err := self(c, task)
			if err != nil {
				return err
			}
			ro, err := other(c, task)
			if err != nil {
				return err
			}
			sp := rs.Speedup(ro)
			row = append(row, sp)
			all = append(all, sp)
			fmt.Fprintf(w, "\t%.2fx", sp)
		}
		fmt.Fprintf(w, "\t%.2fx\n", harness.GeoMean(row))
	}
	fmt.Fprintf(w, "overall\t\t\t\t\t%.2fx\n", harness.GeoMean(all))
	return w.Flush()
}

func fig5a(specs []datagen.Spec) error {
	return speedupMatrix(
		"Fig 5(a): N-TADOC (phase-level) speedup over uncompressed text analytics on NVM",
		specs,
		func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
			return harness.RunNTADOC(c, t, core.Options{})
		},
		func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
			return harness.RunUncompressed(c, t, nvm.KindNVM)
		},
	)
}

func fig5b(specs []datagen.Spec) error {
	return speedupMatrix(
		"Fig 5(b): N-TADOC (operation-level) speedup over uncompressed text analytics on NVM",
		specs,
		func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
			return harness.RunNTADOC(c, t, core.Options{Persistence: core.OpLevel})
		},
		func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
			return harness.RunUncompressed(c, t, nvm.KindNVM)
		},
	)
}

func fig6(specs []datagen.Spec) error {
	// Reported the paper's way: how many times slower N-TADOC is than the
	// DRAM upper bound (TADOC) — slowdown = ntadoc/tadoc.
	header("Fig 6: N-TADOC slowdown relative to TADOC on DRAM (1.0 = parity)")
	w := newTab()
	fmt.Fprint(w, "task")
	for _, s := range specs {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w, "\tmean")
	var all []float64
	for _, task := range analytics.Tasks {
		fmt.Fprintf(w, "%s", task)
		var row []float64
		for _, spec := range specs {
			c, err := harness.GetCorpus(spec)
			if err != nil {
				return err
			}
			nt, err := harness.RunNTADOC(c, task, core.Options{})
			if err != nil {
				return err
			}
			td, err := harness.RunTADOC(c, task, tadoc.Auto)
			if err != nil {
				return err
			}
			slow := td.Speedup(nt) // tadoc faster => >1
			row = append(row, slow)
			all = append(all, slow)
			fmt.Fprintf(w, "\t%.2fx", slow)
		}
		fmt.Fprintf(w, "\t%.2fx\n", harness.GeoMean(row))
	}
	fmt.Fprintf(w, "overall\t\t\t\t\t%.2fx\n", harness.GeoMean(all))
	return w.Flush()
}

func fig7(specs []datagen.Spec) error {
	for _, kind := range []nvm.Kind{nvm.KindSSD, nvm.KindHDD} {
		err := speedupMatrix(
			fmt.Sprintf("Fig 7: N-TADOC on NVM speedup over N-TADOC on %s (page cache = 20%% of dataset)", kind),
			specs,
			func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
				return harness.RunNTADOC(c, t, core.Options{})
			},
			func(c *harness.Corpus, t analytics.Task) (harness.Result, error) {
				return harness.RunNTADOC(c, t, core.Options{Kind: kind})
			},
		)
		if err != nil {
			return err
		}
	}
	return nil
}

func figDRAM(specs []datagen.Spec) error {
	header("§VI-C: DRAM space savings of N-TADOC vs TADOC (RSS analogue)")
	w := newTab()
	fmt.Fprintln(w, "task\tdataset\tTADOC DRAM\tN-TADOC DRAM\tsaving")
	perDataset := map[string][]float64{}
	perTask := map[analytics.Task][]float64{}
	var all []float64
	for _, task := range analytics.Tasks {
		for _, spec := range specs {
			c, err := harness.GetCorpus(spec)
			if err != nil {
				return err
			}
			td, err := harness.RunTADOC(c, task, tadoc.Auto)
			if err != nil {
				return err
			}
			nt, err := harness.RunNTADOC(c, task, core.Options{})
			if err != nil {
				return err
			}
			saving := 1 - float64(nt.DRAMBytes)/float64(td.DRAMBytes)
			perDataset[spec.Name] = append(perDataset[spec.Name], saving)
			perTask[task] = append(perTask[task], saving)
			all = append(all, saving)
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.1f%%\n",
				task, spec.Name, fmtBytes(td.DRAMBytes), fmtBytes(nt.DRAMBytes), saving*100)
		}
	}
	w.Flush()
	fmt.Println("per dataset:")
	for _, spec := range specs {
		fmt.Printf("  %s: %.1f%%\n", spec.Name, mean(perDataset[spec.Name])*100)
	}
	fmt.Println("per task:")
	for _, task := range analytics.Tasks {
		fmt.Printf("  %s: %.1f%%\n", task, mean(perTask[task])*100)
	}
	fmt.Printf("average saving: %.1f%%\n", mean(all)*100)
	return nil
}

func figTable2(specs []datagen.Spec) error {
	header("Table II: N-TADOC time breakdown (modeled milliseconds)")
	w := newTab()
	fmt.Fprintln(w, "dataset\tbenchmark\tinitial phase\ttraversal phase")
	for _, spec := range specs {
		if spec.Name != "C" && spec.Name != "D" {
			continue
		}
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		for _, task := range analytics.Tasks {
			nt, err := harness.RunNTADOC(c, task, core.Options{})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\n",
				spec.Name, task, ms(nt.Init), ms(nt.Traversal))
		}
	}
	return w.Flush()
}

func figPhases(specs []datagen.Spec) error {
	header("§VI-D: per-phase speedups over uncompressed (datasets C and D)")
	w := newTab()
	fmt.Fprintln(w, "dataset\tbenchmark\tinit speedup\ttraversal speedup")
	for _, spec := range specs {
		if spec.Name != "C" && spec.Name != "D" {
			continue
		}
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		var initS, travS []float64
		for _, task := range analytics.Tasks {
			nt, err := harness.RunNTADOC(c, task, core.Options{})
			if err != nil {
				return err
			}
			un, err := harness.RunUncompressed(c, task, nvm.KindNVM)
			if err != nil {
				return err
			}
			is := ratio(un.Init, nt.Init)
			ts := ratio(un.Traversal, nt.Traversal)
			initS = append(initS, is)
			travS = append(travS, ts)
			fmt.Fprintf(w, "%s\t%s\t%.2fx\t%.2fx\n", spec.Name, task, is, ts)
		}
		fmt.Fprintf(w, "%s\taverage\t%.2fx\t%.2fx\n", spec.Name,
			harness.GeoMean(initS), harness.GeoMean(travS))
	}
	return w.Flush()
}

func figTraversal(specs []datagen.Spec) error {
	header("§VI-E: traversal strategies on dataset B (many small files)")
	var specB datagen.Spec
	for _, s := range specs {
		if s.Name == "B" {
			specB = s
		}
	}
	// The top-down penalty grows with file count (the paper reports
	// ~1000x at its full 134k-file scale); show the trend across three
	// file counts.
	w := newTab()
	fmt.Fprintln(w, "files\tbenchmark\ttop-down traversal\tbottom-up traversal\tbottom-up advantage")
	for _, frac := range []int{4, 2, 1} {
		spec := specB
		spec.Files = specB.Files / frac
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		for _, task := range []analytics.Task{analytics.TermVector, analytics.InvertedIndex} {
			td, err := harness.RunNTADOC(c, task, core.Options{Strategy: core.TopDown})
			if err != nil {
				return err
			}
			bu, err := harness.RunNTADOC(c, task, core.Options{Strategy: core.BottomUp})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\t%s\t%.2f ms\t%.2f ms\t%.1fx\n",
				spec.Files, task, ms(td.Traversal), ms(bu.Traversal), ratio(td.Traversal, bu.Traversal))
		}
	}
	return w.Flush()
}

func figCross(specs []datagen.Spec) error {
	header("§III-B / §VI-F: naive NVM port and cross-evaluation")
	w := newTab()
	fmt.Fprintln(w, "dataset\tnaive port slowdown vs TADOC\tN-TADOC speedup vs naive port")
	// The §III-B naive port: std structures pointed at NVM through a
	// transactional allocator — untrimmed bodies, growable tables, no
	// layout control, and a PMDK-style transaction per mutation.
	naive := core.Options{
		NoPruning: true, NoBounds: true, Scatter: true,
		Persistence: core.OpLevel, PerOpCommit: true,
	}
	var slows, speeds []float64
	for _, spec := range specs {
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		task := analytics.WordCount
		np, err := harness.RunNTADOC(c, task, naive)
		if err != nil {
			return err
		}
		td, err := harness.RunTADOC(c, task, tadoc.Auto)
		if err != nil {
			return err
		}
		nt, err := harness.RunNTADOC(c, task, core.Options{})
		if err != nil {
			return err
		}
		slow := td.Speedup(np)
		speed := nt.Speedup(np)
		slows = append(slows, slow)
		speeds = append(speeds, speed)
		fmt.Fprintf(w, "%s\t%.2fx\t%.2fx\n", spec.Name, slow, speed)
	}
	fmt.Fprintf(w, "mean\t%.2fx\t%.2fx\n", harness.GeoMean(slows), harness.GeoMean(speeds))
	return w.Flush()
}

func figDatasets(specs []datagen.Spec) error {
	header("Table I analogue: dataset statistics (scaled synthetic corpora)")
	w := newTab()
	fmt.Fprintln(w, "dataset\tfile#\trule#\tvocabulary\ttokens\tcompressed symbols\tratio")
	for _, spec := range specs {
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		st := c.G.ComputeStats()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.3f\n",
			spec.Name, st.Files, st.Rules, st.Vocabulary, st.Expanded,
			st.BodySymbols, float64(st.BodySymbols)/float64(st.Expanded))
	}
	return w.Flush()
}

func figPrune(specs []datagen.Spec) error {
	header("§IV-B: grammar redundancy eliminated by pruning")
	w := newTab()
	fmt.Fprintln(w, "dataset\traw body bytes\tpruned body bytes\teliminated")
	for _, spec := range specs {
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		raw, pruned := pruneSizes(c.G)
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f%%\n",
			spec.Name, fmtBytes(raw), fmtBytes(pruned), (1-float64(pruned)/float64(raw))*100)
	}
	return w.Flush()
}

// figEndurance quantifies the §VII claim that N-TADOC's design reduces NVM
// write traffic (improving media endurance): media-granule writes per word
// count, for N-TADOC under both persistence strategies and the naive port.
func figEndurance(specs []datagen.Spec) error {
	header("§VII: NVM write traffic per word-count run (media granules written)")
	w := newTab()
	fmt.Fprintln(w, "dataset\tN-TADOC phase-level\tN-TADOC op-level\tnaive port\tnaive amplification")
	naive := core.Options{
		NoPruning: true, NoBounds: true, Scatter: true,
		Persistence: core.OpLevel, PerOpCommit: true,
	}
	for _, spec := range specs {
		c, err := harness.GetCorpus(spec)
		if err != nil {
			return err
		}
		writes := func(opts core.Options) (int64, error) {
			r, err := harness.RunNTADOC(c, analytics.WordCount, opts)
			if err != nil {
				return 0, err
			}
			// Granules made durable: flush traffic is what wears media.
			return r.Device.FlushedBytes / 256, nil
		}
		pl, err := writes(core.Options{})
		if err != nil {
			return err
		}
		ol, err := writes(core.Options{Persistence: core.OpLevel})
		if err != nil {
			return err
		}
		nv, err := writes(naive)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1fx\n", spec.Name, pl, ol, nv, float64(nv)/float64(pl))
	}
	return w.Flush()
}

// pruneSizes computes the byte footprint of raw versus pruned rule bodies,
// mirroring the engine's Algorithm 1 compact encoding: 4 bytes per raw
// symbol versus, per distinct (id, freq) pair, 4 bytes plus 4 more only
// when the frequency exceeds one, plus a 4-byte length prefix per rule.
func pruneSizes(g *cfg.Grammar) (raw, pruned int64) {
	for _, body := range g.Rules {
		raw += int64(len(body)) * 4
		subs := map[uint32]int{}
		words := map[uint32]int{}
		for _, s := range body {
			switch {
			case s.IsRule():
				subs[s.RuleIndex()]++
			case s.IsWord():
				words[s.WordID()]++
			}
		}
		pruned += 4
		for _, f := range subs {
			pruned += 4
			if f > 1 {
				pruned += 4
			}
		}
		for _, f := range words {
			pruned += 4
			if f > 1 {
				pruned += 4
			}
		}
	}
	return raw, pruned
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
