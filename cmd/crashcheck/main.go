// Command crashcheck runs the systematic crash-point exploration of
// internal/crashcheck and prints a per-crash-point verdict table: for every
// persistence event of the workload (or a seeded sample), the recovery
// outcome under each injected torn-write subset.  Exit status 1 when any
// invariant violation is found.
//
// Usage:
//
//	crashcheck -task wordcount -persistence both -points 0 -seeds 3 -seed 42
//	crashcheck -task wordcount -shards 3 -points 8
//	crashcheck -failover -shards 3 -points 6
//	crashcheck -ingest -points 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/crashcheck"
)

func main() {
	var (
		task        = flag.String("task", "wordcount", "workload: wordcount or seqcount")
		persistence = flag.String("persistence", "both", "strategy: phase, op, or both")
		points      = flag.Int("points", 0, "crash points to explore (0 = exhaustive)")
		seeds       = flag.Int("seeds", 3, "seeded torn-write subsets per crash point (plus the none/all extremes)")
		seed        = flag.Int64("seed", 42, "base seed for sampling and subset selection")
		files       = flag.Int("files", 2, "corpus files")
		tokens      = flag.Int("tokens", 120, "tokens per file")
		vocab       = flag.Int("vocab", 40, "corpus vocabulary size")
		corpusSeed  = flag.Int64("corpus-seed", 7, "corpus generator seed")
		shards      = flag.Int("shards", 1, "explore a k-way sharded engine instead (k >= 2)")
		failover    = flag.Bool("failover", false, "explore the replication/failover matrix (needs -shards >= 2)")
		ingest      = flag.Bool("ingest", false, "explore online ingestion: crash during live appends and compaction")
		verbose     = flag.Bool("v", false, "print per-point progress while exploring")
	)
	flag.Parse()

	if *failover && *shards < 2 {
		fmt.Fprintln(os.Stderr, "crashcheck: -failover needs -shards >= 2")
		os.Exit(2)
	}

	var modes []core.Persistence
	switch *persistence {
	case "phase":
		modes = []core.Persistence{core.PhaseLevel}
	case "op":
		modes = []core.Persistence{core.OpLevel}
	case "both":
		modes = []core.Persistence{core.PhaseLevel, core.OpLevel}
	default:
		fmt.Fprintf(os.Stderr, "crashcheck: unknown -persistence %q (want phase, op, or both)\n", *persistence)
		os.Exit(2)
	}

	violations := 0
	for _, mode := range modes {
		cfg := crashcheck.Config{
			Task:        *task,
			Persistence: mode,
			Points:      *points,
			Subsets:     *seeds,
			Seed:        *seed,
			Files:       *files,
			TokensPer:   *tokens,
			Vocab:       *vocab,
			CorpusSeed:  *corpusSeed,
		}
		if *verbose {
			cfg.Log = os.Stderr
		}
		var (
			rep *crashcheck.Report
			err error
		)
		switch {
		case *ingest:
			rep, err = crashcheck.RunIngest(cfg)
		case *failover:
			rep, err = crashcheck.RunFailover(cfg, *shards)
		case *shards > 1:
			rep, err = crashcheck.RunSharded(cfg, *shards)
		default:
			rep, err = crashcheck.Run(cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashcheck: %v\n", err)
			os.Exit(2)
		}
		printReport(mode, *task, rep, *shards > 1)
		violations += rep.Violations
	}
	if violations > 0 {
		fmt.Printf("\nFAIL: %d invariant violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("\nOK: zero invariant violations")
}

func printReport(mode core.Persistence, task string, rep *crashcheck.Report, sharded bool) {
	fmt.Printf("\n%s / %s: %d persistence events, %d crash points explored\n",
		task, mode, rep.TotalEvents, len(rep.Points))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "event\toutcomes\tverdict")
	for _, pt := range rep.Points {
		states := make([]string, len(pt.Outcomes))
		for i, o := range pt.Outcomes {
			states[i] = o.State
		}
		verdict := "ok"
		if n := pt.Violations(); n > 0 {
			verdict = fmt.Sprintf("VIOLATIONS=%d", n)
		}
		label := fmt.Sprintf("%d", pt.Event)
		if sharded {
			label = fmt.Sprintf("s%d/%d", pt.Shard, pt.Event)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\n", label, strings.Join(states, ","), verdict)
		for _, o := range pt.Outcomes {
			for _, v := range o.Violations {
				fmt.Fprintf(w, "\t  %s: %s\t\n", o.Subset, v)
			}
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "crashcheck: %v\n", err)
	}
}
