// Ngram: mine frequent three-word sequences from a document collection
// directly on the compressed archive, then build a ranked inverted index
// over them — the paper's two sequence-analytics benchmarks, exercised
// through the head/tail structures of §IV-D.  The example also demonstrates
// phase-level persistence: the pool is file-backed, and a second engine
// reopened from the same file reads the committed results after a simulated
// restart.
//
//	go run ./examples/ngram
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/text-analytics/ntadoc"
)

// corpus: verses with heavy repeated phrasing, the structure n-gram mining
// feeds on.
var verses = []ntadoc.Document{
	{Name: "verse1", Text: strings.Repeat("row row row your boat gently down the stream ", 8) +
		"merrily merrily merrily merrily life is but a dream"},
	{Name: "verse2", Text: strings.Repeat("the wheels on the bus go round and round ", 6) +
		"round and round all through the town"},
	{Name: "verse3", Text: strings.Repeat("if you are happy and you know it clap your hands ", 5) +
		"and you really want to show it clap your hands"},
	{Name: "verse4", Text: "down by the stream the wheels go round and round " +
		strings.Repeat("gently down the stream ", 4)},
}

func main() {
	archive, err := ntadoc.Compress(verses)
	if err != nil {
		log.Fatal(err)
	}
	st := archive.Stats()
	fmt.Printf("compressed %d verses: %d tokens -> %d symbols (%.1f%%)\n\n",
		st.Documents, st.Tokens, st.GrammarSymbols, st.CompressionRate*100)

	poolPath := filepath.Join(os.TempDir(), "ngram-pool.nvm")
	defer os.Remove(poolPath)

	eng, err := ntadoc.NewEngine(archive, ntadoc.Options{PoolPath: poolPath})
	if err != nil {
		log.Fatal(err)
	}

	// Sequence count: global n-gram frequencies, computed by weighting each
	// grammar rule's local windows — no rule is ever expanded.
	seqs, err := eng.SequenceCount()
	if err != nil {
		log.Fatal(err)
	}
	type sc struct {
		seq string
		n   uint64
	}
	ranked := make([]sc, 0, len(seqs))
	for q, n := range seqs {
		ranked = append(ranked, sc{q, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].seq < ranked[j].seq
	})
	fmt.Println("most frequent three-word sequences:")
	for _, r := range ranked[:8] {
		fmt.Printf("  %3d  %q\n", r.n, r.seq)
	}

	// Ranked inverted index: which verse uses each sequence most?
	rii, err := eng.RankedInvertedIndex()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranked postings for shared sequences:")
	for _, probe := range []string{"down the stream", "round and round", "clap your hands"} {
		postings := rii[probe]
		fmt.Printf("  %-18q ->", probe)
		for _, p := range postings {
			fmt.Printf(" %s(%d)", p.Doc, p.Count)
		}
		fmt.Println()
	}

	// Phase-level persistence: close the engine, then reopen the pool file
	// as a fresh process would after a restart.
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	eng2, err := ntadoc.NewEngine(archive, ntadoc.Options{PoolPath: poolPath})
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	again, err := eng2.SequenceCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter reopening the persistent pool: %d sequences, "+
		"'down the stream' x%d (results reproducible across restarts)\n",
		len(again), again["down the stream"])
}
