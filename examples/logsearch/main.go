// Logsearch: build a searchable index over many small, highly redundant log
// files — the shape of the paper's dataset B (NSF abstracts) and a natural
// fit for TADOC, since log lines share templates.  The example compresses
// 200 synthetic service logs, builds an inverted index directly on the
// compressed archive with the bottom-up traversal (the strategy §VI-E shows
// is essential for many-file corpora), and answers "which logs mention X?"
// queries.
//
//	go run ./examples/logsearch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/text-analytics/ntadoc"
)

// makeLogs synthesizes numLogs small log files from shared templates, the
// redundancy profile of real service logs.
func makeLogs(numLogs int) []ntadoc.Document {
	r := rand.New(rand.NewSource(7))
	templates := []string{
		"INFO request completed status 200 in %dms for user u%d",
		"WARN retrying connection to shard-%d attempt %d backing off",
		"ERROR timeout talking to shard-%d after %dms giving up",
		"INFO cache hit ratio %d percent over last %d requests",
		"DEBUG gc pause %dms heap %dmb goroutines %d",
	}
	services := []string{"auth", "billing", "search", "ingest"}
	docs := make([]ntadoc.Document, numLogs)
	for i := range docs {
		text := ""
		for line := 0; line < 20+r.Intn(30); line++ {
			t := templates[r.Intn(len(templates))]
			switch countVerbs(t) {
			case 2:
				text += fmt.Sprintf(t, r.Intn(500), r.Intn(100)) + "\n"
			default:
				text += fmt.Sprintf(t, r.Intn(500), r.Intn(100), r.Intn(64)) + "\n"
			}
		}
		docs[i] = ntadoc.Document{
			Name: fmt.Sprintf("%s-%03d.log", services[i%len(services)], i),
			Text: text,
		}
	}
	return docs
}

func countVerbs(t string) int {
	n := 0
	for i := 0; i+1 < len(t); i++ {
		if t[i] == '%' && t[i+1] == 'd' {
			n++
		}
	}
	return n
}

func main() {
	docs := makeLogs(200)
	archive, err := ntadoc.Compress(docs)
	if err != nil {
		log.Fatal(err)
	}
	st := archive.Stats()
	fmt.Printf("indexed %d log files: %d tokens compressed to %d symbols (%.1f%%)\n",
		st.Documents, st.Tokens, st.GrammarSymbols, st.CompressionRate*100)

	eng, err := ntadoc.NewEngine(archive, ntadoc.Options{NoSequences: true})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The inverted index is built once, directly on the compressed DAG.
	index, err := eng.InvertedIndex()
	if err != nil {
		log.Fatal(err)
	}

	for _, query := range []string{"error", "timeout", "gc"} {
		hits := index[query]
		fmt.Printf("\nlogs mentioning %q: %d", query, len(hits))
		for i, name := range hits {
			if i == 5 {
				fmt.Printf(" ... (+%d more)", len(hits)-5)
				break
			}
			fmt.Printf(" %s", name)
		}
		fmt.Println()
	}

	// Per-log term vectors surface each service's hottest terms.
	vecs, err := eng.TermVectors(3)
	if err != nil {
		log.Fatal(err)
	}
	names := archive.DocumentNames()
	fmt.Println("\nsample per-log hot terms:")
	for i := 0; i < 3; i++ {
		fmt.Printf("  %s:", names[i])
		for _, tc := range vecs[i] {
			fmt.Printf(" %s(%d)", tc.Term, tc.Count)
		}
		fmt.Println()
	}

	init, trav := eng.PhaseTimes()
	fmt.Printf("\nmodeled time: init %v, last traversal %v\n", init, trav)
}
