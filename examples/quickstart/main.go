// Quickstart: compress a handful of documents and run word count on the
// compressed archive — first on simulated NVM (N-TADOC), then on DRAM
// (original TADOC) — without ever decompressing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/text-analytics/ntadoc"
)

func main() {
	docs := []ntadoc.Document{
		{Name: "haiku1.txt", Text: "an old silent pond a frog jumps into the pond splash silence again"},
		{Name: "haiku2.txt", Text: "the light of a candle is transferred to another candle spring twilight"},
		{Name: "haiku3.txt", Text: "over the wintry forest winds howl in rage with no leaves to blow"},
		{Name: "haiku4.txt", Text: "an old silent pond a frog jumps into the pond again and again"},
	}

	archive, err := ntadoc.Compress(docs)
	if err != nil {
		log.Fatal(err)
	}
	st := archive.Stats()
	fmt.Printf("compressed %d documents: %d tokens -> %d grammar symbols (%d rules)\n",
		st.Documents, st.Tokens, st.GrammarSymbols, st.Rules)

	// Analytics directly on the compressed form, resident on simulated NVM.
	eng, err := ntadoc.NewEngine(archive, ntadoc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	top, err := eng.TopTerms(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop words (N-TADOC on NVM):")
	for _, tc := range top {
		fmt.Printf("  %-10s %d\n", tc.Term, tc.Count)
	}

	seqs, err := eng.SequenceCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepeated three-word sequences:")
	for q, n := range seqs {
		if n > 1 {
			fmt.Printf("  %q x%d\n", q, n)
		}
	}

	init, trav := eng.PhaseTimes()
	dev, dram := eng.MemoryFootprint()
	fmt.Printf("\nmodeled phases: init %v, traversal %v\n", init, trav)
	fmt.Printf("residency: %d bytes on NVM, ~%d bytes DRAM\n", dev, dram)

	// The same API runs the original TADOC on DRAM for comparison.
	dramEng, err := ntadoc.NewEngine(archive, ntadoc.Options{Medium: ntadoc.MediumDRAM})
	if err != nil {
		log.Fatal(err)
	}
	counts, err := dramEng.WordCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDRAM TADOC agrees: 'pond' appears %d times\n", counts["pond"])
}
