// Sensorlog: the paper's embedded-systems scenario (§III-C) — an IoT node
// buffers compressed telemetry on NVM and must survive power failures.  The
// example runs word count under operation-level persistence (§IV-E), pulls
// the power mid-traversal, and recovers: the redo log replays the committed
// operations onto the rebuilt counters, so no completed work is lost.
//
// This drives the crash machinery through the internal engine directly,
// since deliberately crashing mid-task is not part of the public API.
//
//	go run ./examples/sensorlog
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

func main() {
	// Telemetry: highly templated readings, the redundancy TADOC feeds on.
	d := dict.New()
	var tk dict.Tokenizer
	var files [][]uint32
	for node := 0; node < 6; node++ {
		var b strings.Builder
		for t := 0; t < 120; t++ {
			fmt.Fprintf(&b, "node %d reading temp %d humidity %d status ok ",
				node, 18+t%7, 40+t%11)
			if t%13 == 0 {
				fmt.Fprintf(&b, "status warn battery low node %d ", node)
			}
		}
		files = append(files, tk.EncodeString(d, b.String()))
	}
	g, err := sequitur.Infer(files, uint32(d.Len()))
	if err != nil {
		log.Fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("telemetry: %d nodes, %d tokens compressed to %d symbols (%.1f%%)\n",
		st.Files, st.Expanded, st.BodySymbols,
		100*float64(st.BodySymbols)/float64(st.Expanded))

	// Operation-level persistence: every counter mutation is redo-logged
	// and fenced per operation, the durability an unattended sensor needs.
	opts := core.Options{Persistence: core.OpLevel}
	eng, err := core.New(g, d, opts)
	if err != nil {
		log.Fatal(err)
	}
	want, err := eng.WordCount()
	if err != nil {
		log.Fatal(err)
	}
	okID, _ := d.Lookup("ok")
	warnID, _ := d.Lookup("warn")
	fmt.Printf("committed run: ok=%d warn=%d (%d distinct words)\n",
		want[okID], want[warnID], len(want))

	// Power failure!  The device's volatile image is discarded; only what
	// was flushed (the init checkpoint, the redo log, compacted tables)
	// survives.
	if err := eng.Device().Crash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- power failure --")

	recovered, info, err := core.Reopen(eng.Device(), d, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered at phase %d, replayed %d logged operations\n",
		info.Phase, info.Replayed)
	counts, _, ok := recovered.CommittedCounts()
	if !ok {
		log.Fatal("committed results not found after recovery")
	}
	if counts[okID] != want[okID] || counts[warnID] != want[warnID] {
		log.Fatalf("recovery diverged: ok=%d warn=%d", counts[okID], counts[warnID])
	}
	fmt.Printf("recovered counts intact: ok=%d warn=%d\n",
		counts[okID], counts[warnID])

	// The node resumes analytics on the recovered pool without re-reading
	// or re-compressing the telemetry.
	again, err := recovered.WordCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed analytics on recovered pool: %d distinct words, consistent=%v\n",
		len(again), len(again) == len(want))
	_ = analytics.WordCount // tasks enumerated in internal/analytics
}
