// Package ntadoc is a Go implementation of N-TADOC — NVM-based text
// analytics directly on compressed data (Fang et al., ICDE 2024) — together
// with the TADOC compression core it builds on.
//
// The package compresses document collections into a context-free grammar
// (Sequitur with dictionary encoding) and runs text analytics on the
// compressed form without decompression: word count, sort, term vector,
// inverted index, sequence count, and ranked inverted index.  Analytics run
// on a simulated non-volatile-memory device with faithful persistence
// semantics (crash + recovery), using the paper's designs: pruning with NVM
// pool management, bottom-up upper-bound summation, NVM-adapted data
// structures, and phase- or operation-level persistence.
//
// Quick start:
//
//	archive, _ := ntadoc.Compress([]ntadoc.Document{
//		{Name: "a.txt", Text: "the quick brown fox ..."},
//	})
//	eng, _ := ntadoc.NewEngine(archive, ntadoc.Options{})
//	defer eng.Close()
//	counts, _ := eng.WordCount()
package ntadoc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"github.com/text-analytics/ntadoc/internal/cfg"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/sequitur"
)

// Document is one input text with its name.
type Document struct {
	Name string
	Text string
}

// Archive is a compressed document collection: the TADOC grammar plus its
// dictionary.  Archives serialize with WriteTo and load with ReadArchive.
//
// A sharded archive (CompressSharded) additionally keeps one grammar per
// shard plus the unified form — the shards rewritten against one shared rule
// table, which recovers the cross-shard redundancy independent builds
// re-learn; the whole-corpus grammar is the shard concatenation.  The shard
// boundary is whole documents, so every document lives in exactly one shard
// and sharded analytics merge to bit-identical results.
type Archive struct {
	g      *cfg.Grammar
	d      *dict.Dictionary
	shards []*cfg.Grammar // nil for an unsharded archive
	shared *cfg.SharedSet // unified form; nil for unsharded or legacy archives

	// Online ingestion appends documents after compression.  The archive
	// tracks them separately from the base grammar so WriteTo can serialize
	// the base unchanged plus a compact delta grammar over just the appended
	// documents (the NTDCDLT1 container), mirroring how a live engine serves
	// base + delta without recompressing.
	deltaTokens [][]uint32 // appended documents' token streams, in append order
	deltaNames  []string   // appended documents' display names
}

// Compress builds an archive from documents.  Tokenization lowercases and
// strips surrounding punctuation (see CompressTokens for full control).
func Compress(docs []Document) (*Archive, error) {
	d := dict.New()
	var tk dict.Tokenizer
	tokens := make([][]uint32, len(docs))
	names := make([]string, len(docs))
	for i, doc := range docs {
		tokens[i] = tk.EncodeString(d, doc.Text)
		names[i] = doc.Name
	}
	return compress(tokens, names, d)
}

// CompressTokens builds an archive from pre-tokenized, dictionary-encoded
// documents.  Token IDs must be dense dictionary IDs from dct.
func CompressTokens(tokens [][]uint32, names []string, dct *Dictionary) (*Archive, error) {
	return compress(tokens, names, dct.d)
}

func compress(tokens [][]uint32, names []string, d *dict.Dictionary) (*Archive, error) {
	g, err := sequitur.Infer(tokens, uint32(d.Len()))
	if err != nil {
		return nil, fmt.Errorf("ntadoc: compress: %w", err)
	}
	g.Files = names
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Archive{g: g, d: d}, nil
}

// CompressSharded builds a K-way sharded archive: documents are partitioned
// into K contiguous shards of balanced token weight and each shard is
// compressed independently (in parallel), so engines can build and query the
// shards concurrently.  A cross-shard unification pass then rewrites the
// shard grammars against one shared rule table, recovering most of the
// compression that independent builds give up — the archive keeps both the
// unified form (what serializes) and the per-shard closures (what engines
// build from).  k = 1 (or a single document) degenerates to Compress.
func CompressSharded(docs []Document, k int) (*Archive, error) {
	d := dict.New()
	var tk dict.Tokenizer
	tokens := make([][]uint32, len(docs))
	names := make([]string, len(docs))
	for i, doc := range docs {
		tokens[i] = tk.EncodeString(d, doc.Text)
		names[i] = doc.Name
	}
	return compressSharded(tokens, names, d, k)
}

// CompressTokensSharded is CompressSharded over pre-tokenized documents.
func CompressTokensSharded(tokens [][]uint32, names []string, dct *Dictionary, k int) (*Archive, error) {
	return compressSharded(tokens, names, dct.d, k)
}

func compressSharded(tokens [][]uint32, names []string, d *dict.Dictionary, k int) (*Archive, error) {
	if k <= 1 {
		return compress(tokens, names, d)
	}
	sb, err := sequitur.InferShardsShared(tokens, uint32(d.Len()), k)
	if err != nil {
		return nil, fmt.Errorf("ntadoc: compress sharded: %w", err)
	}
	gs := sb.Shards
	if len(gs) == 1 {
		gs[0].Files = names
		if err := gs[0].Validate(); err != nil {
			return nil, err
		}
		return &Archive{g: gs[0], d: d}, nil
	}
	base := uint32(0)
	for si, g := range gs {
		if names != nil {
			sub := names[base : base+g.NumFiles]
			g.Files = sub
			sb.Set.Shards[si].Files = sub
		}
		base += g.NumFiles
	}
	merged, err := cfg.ConcatShards(gs)
	if err != nil {
		return nil, fmt.Errorf("ntadoc: compress sharded: %w", err)
	}
	return &Archive{g: merged, d: d, shards: gs, shared: sb.Set}, nil
}

// NumShards returns the archive's shard count (1 when unsharded).
func (a *Archive) NumShards() int {
	if a.shards == nil {
		return 1
	}
	return len(a.shards)
}

// AppendedDocuments returns how many documents have been appended to the
// archive since its base was compressed (and not yet folded into it).
func (a *Archive) AppendedDocuments() int { return len(a.deltaTokens) }

// recordAppend tracks appended documents so WriteTo can serialize them as a
// delta over the unchanged base.  Called by Engine.Append under its append
// lock; tokens are already interned in the archive's dictionary.
func (a *Archive) recordAppend(tokens [][]uint32, names []string) {
	a.deltaTokens = append(a.deltaTokens, tokens...)
	a.deltaNames = append(a.deltaNames, names...)
}

// fold folds pending appended documents into the whole-corpus grammar — an
// offline compaction.  The sharded forms are dropped when a delta folds:
// the folded corpus no longer matches the per-shard images, and recovering
// cross-shard redundancy requires recompressing.  No-op without a delta.
func (a *Archive) fold() error {
	if len(a.deltaTokens) == 0 {
		return nil
	}
	dg, err := sequitur.Infer(a.deltaTokens, uint32(a.d.Len()))
	if err != nil {
		return fmt.Errorf("ntadoc: fold delta: %w", err)
	}
	dg.Files = a.deltaNames
	if a.g.Files == nil {
		// MergeDelta synthesizes names for an unnamed base; pin the base's
		// default names so the folded corpus keeps DocumentNames stable.
		a.g.Files = a.DocumentNames()
	}
	merged, err := cfg.MergeDelta(a.g, dg)
	if err != nil {
		return fmt.Errorf("ntadoc: fold delta: %w", err)
	}
	a.g, a.shards, a.shared = merged, nil, nil
	a.deltaTokens, a.deltaNames = nil, nil
	return nil
}

// Dictionary wraps the word <-> ID mapping for use with CompressTokens.
type Dictionary struct{ d *dict.Dictionary }

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary { return &Dictionary{d: dict.New()} }

// Intern returns the ID for word, assigning one on first use.
func (dc *Dictionary) Intern(word string) uint32 { return dc.d.Intern(word) }

// Len returns the vocabulary size.
func (dc *Dictionary) Len() int { return dc.d.Len() }

// Stats summarizes an archive.
type Stats struct {
	Documents       int
	Rules           int
	Vocabulary      int
	Tokens          int64 // uncompressed length in tokens
	GrammarSymbols  int64 // compressed length in grammar symbols
	CompressionRate float64
}

// Stats returns summary statistics of the archive.
func (a *Archive) Stats() Stats {
	st := a.g.ComputeStats()
	rate := 0.0
	if st.Expanded > 0 {
		rate = float64(st.BodySymbols) / float64(st.Expanded)
	}
	return Stats{
		Documents:       st.Files,
		Rules:           st.Rules,
		Vocabulary:      st.Vocabulary,
		Tokens:          st.Expanded,
		GrammarSymbols:  st.BodySymbols,
		CompressionRate: rate,
	}
}

// DocumentNames returns the archived document names in order.
func (a *Archive) DocumentNames() []string {
	if a.g.Files != nil {
		return a.g.Files
	}
	names := make([]string, a.g.NumFiles)
	for i := range names {
		names[i] = fmt.Sprintf("doc%d", i)
	}
	return names
}

// Decompress reconstructs the original documents (tokens re-joined with
// single spaces; tokenization is lossy about whitespace and punctuation by
// design, as in the paper's dictionary conversion).
func (a *Archive) Decompress() []Document {
	names := a.DocumentNames()
	files := a.g.ExpandFiles()
	docs := make([]Document, len(files))
	for i, toks := range files {
		words := make([]string, len(toks))
		for j, id := range toks {
			words[j] = a.d.Word(id)
		}
		docs[i] = Document{Name: names[i], Text: strings.Join(words, " ")}
	}
	return docs
}

// WriteTo serializes the archive: a length-prefixed grammar section
// followed by the dictionary.  The length prefix lets the reader bound the
// grammar parser's buffering exactly.  A sharded archive's grammar section
// is the shared-table container (the unified form: one self-checksummed
// shared rule table plus a root per shard) when the archive carries one, or
// the legacy per-shard container otherwise; an unsharded archive's is a
// single grammar, byte-compatible with earlier versions.
//
// An archive with appended documents serializes as a delta container: the
// base section byte-for-byte unchanged, plus a compact grammar inferred over
// just the appended documents — no recompression of the base.  ReadArchive
// folds the delta back in (an offline compaction), so a load/store cycle
// compacts the archive.
func (a *Archive) WriteTo(w io.Writer) (int64, error) {
	var gbuf bytes.Buffer
	if len(a.deltaTokens) > 0 {
		var base bytes.Buffer
		if err := a.writeBaseSection(&base); err != nil {
			return 0, err
		}
		dg, err := sequitur.Infer(a.deltaTokens, uint32(a.d.Len()))
		if err != nil {
			return 0, fmt.Errorf("ntadoc: delta section: %w", err)
		}
		dg.Files = a.deltaNames
		if _, err := cfg.WriteDeltaContainer(&gbuf, base.Bytes(), dg); err != nil {
			return 0, err
		}
	} else if err := a.writeBaseSection(&gbuf); err != nil {
		return 0, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(gbuf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := io.Copy(w, &gbuf)
	n += 8
	if err != nil {
		return n, err
	}
	m, err := a.d.WriteTo(w)
	return n + m, err
}

// writeBaseSection writes the base grammar section in its richest available
// form: shared-table container, legacy shard container, or single grammar.
func (a *Archive) writeBaseSection(w io.Writer) error {
	switch {
	case a.shared != nil:
		_, err := cfg.WriteSharedSet(w, a.shared)
		return err
	case a.shards != nil:
		_, err := cfg.WriteShards(w, a.shards)
		return err
	default:
		_, err := a.g.WriteTo(w)
		return err
	}
}

// ReadArchive loads an archive written by WriteTo, validating both parts.
// The grammar section's leading magic selects between the single-grammar
// and shard-container formats.
func ReadArchive(r io.Reader) (*Archive, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("ntadoc: archive header: %w", err)
	}
	gLen := int64(binary.LittleEndian.Uint64(hdr[:]))
	if gLen < 8 || gLen > 1<<40 {
		return nil, fmt.Errorf("ntadoc: absurd grammar section length %d", gLen)
	}
	// Peek the section magic to dispatch without disturbing the section
	// reader's byte accounting.
	var peek [8]byte
	if _, err := io.ReadFull(r, peek[:]); err != nil {
		return nil, fmt.Errorf("ntadoc: grammar section: %w", err)
	}
	section := io.MultiReader(bytes.NewReader(peek[:]), io.LimitReader(r, gLen-8))
	var (
		g      *cfg.Grammar
		shards []*cfg.Grammar
		shared *cfg.SharedSet
		err    error
	)
	if cfg.IsDeltaContainer(peek[:]) {
		// A delta archive: parse the embedded base section, then fold the
		// delta grammar into the whole-corpus form — an offline compaction.
		// The base's sharded forms are dropped: the folded corpus no longer
		// matches the per-shard images.
		baseBytes, delta, derr := cfg.ReadDeltaContainer(section)
		if derr != nil {
			return nil, derr
		}
		if len(baseBytes) < 8 {
			return nil, fmt.Errorf("ntadoc: delta container base section too short (%d bytes)", len(baseBytes))
		}
		g, _, _, err = readGrammarSection(baseBytes[:8], bytes.NewReader(baseBytes))
		if err != nil {
			return nil, err
		}
		if g, err = cfg.MergeDelta(g, delta); err != nil {
			return nil, err
		}
	} else if g, shards, shared, err = readGrammarSection(peek[:], section); err != nil {
		return nil, err
	}
	d := dict.New()
	if _, err := d.ReadFrom(r); err != nil {
		return nil, err
	}
	if uint32(d.Len()) < g.NumWords {
		return nil, fmt.Errorf("ntadoc: dictionary (%d words) smaller than grammar vocabulary (%d)", d.Len(), g.NumWords)
	}
	return &Archive{g: g, d: d, shards: shards, shared: shared}, nil
}

// readGrammarSection parses one grammar section, dispatching on its leading
// magic: shared-table container, legacy shard container, or single grammar.
// section must include the peeked bytes.
func readGrammarSection(peek []byte, section io.Reader) (g *cfg.Grammar, shards []*cfg.Grammar, shared *cfg.SharedSet, err error) {
	switch {
	case cfg.IsSharedContainer(peek):
		shared, err = cfg.ReadSharedSet(section)
		if err != nil {
			return nil, nil, nil, err
		}
		shards, err = shared.Materialize()
		if err != nil {
			return nil, nil, nil, err
		}
		if len(shards) == 1 {
			g, shards, shared = shards[0], nil, nil
		} else if g, err = cfg.ConcatShards(shards); err != nil {
			return nil, nil, nil, err
		}
	case cfg.IsShardContainer(peek):
		shards, err = cfg.ReadShards(section)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(shards) == 1 {
			g, shards = shards[0], nil
		} else if g, err = cfg.ConcatShards(shards); err != nil {
			return nil, nil, nil, err
		}
	default:
		if g, err = cfg.ReadGrammar(section); err != nil {
			return nil, nil, nil, err
		}
	}
	return g, shards, shared, nil
}

// WriteDOT renders the archive's grammar DAG in Graphviz DOT format, with
// short rule bodies labelled using real words — the paper's Figure 1(e)
// view of the compressed data.
func (a *Archive) WriteDOT(w io.Writer) error {
	return a.g.WriteDOT(w, a.d)
}
