package ntadoc

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadTestdata compresses the checked-in prose corpora, exercising the same
// path as the CLI's compress command.
func loadTestdata(t *testing.T) *Archive {
	t.Helper()
	paths, err := filepath.Glob("testdata/*.txt")
	if err != nil || len(paths) < 3 {
		t.Fatalf("testdata: %v (%d files)", err, len(paths))
	}
	docs := make([]Document, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		docs = append(docs, Document{Name: filepath.Base(p), Text: string(data)})
	}
	a, err := Compress(docs)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	return a
}

func TestTestdataEndToEnd(t *testing.T) {
	a := loadTestdata(t)
	st := a.Stats()
	if st.Documents != 3 {
		t.Fatalf("documents = %d", st.Documents)
	}
	if st.CompressionRate >= 1 {
		t.Errorf("prose did not compress: %.2f", st.CompressionRate)
	}

	// Serialize to disk and back, as the CLI does.
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.tdc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	f.Close()
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	a2, err := ReadArchive(f2)
	if err != nil {
		t.Fatalf("ReadArchive: %v", err)
	}

	// All engines agree on real prose.
	nvmEng, err := NewEngine(a2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nvmEng.Close()
	dramEng, err := NewEngine(a2, Options{Medium: MediumDRAM})
	if err != nil {
		t.Fatal(err)
	}
	wc1, err := nvmEng.WordCount()
	if err != nil {
		t.Fatal(err)
	}
	wc2, err := dramEng.WordCount()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wc1, wc2) {
		t.Error("engines disagree on testdata word count")
	}
	if wc1["the"] == 0 || wc1["and"] == 0 {
		t.Errorf("implausible counts: the=%d and=%d", wc1["the"], wc1["and"])
	}

	inv, err := nvmEng.InvertedIndex()
	if err != nil {
		t.Fatal(err)
	}
	if docs := inv["alice"]; len(docs) != 1 || docs[0] != "carroll.txt" {
		t.Errorf("alice postings = %v", docs)
	}

	seqs, err := nvmEng.SequenceCount()
	if err != nil {
		t.Fatal(err)
	}
	if seqs["aunt polly"] != 0 { // bigram key cannot appear among trigrams
		t.Error("bigram leaked into trigram results")
	}
	var sawPolly bool
	for q := range seqs {
		if strings.Contains(q, "aunt polly") {
			sawPolly = true
			break
		}
	}
	if !sawPolly {
		t.Error("no trigram containing 'aunt polly'")
	}
}

func TestWriteDOT(t *testing.T) {
	a := loadTestdata(t)
	var buf bytes.Buffer
	if err := a.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph tadoc {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("not a DOT document:\n%.120s...", out)
	}
	if !strings.Contains(out, "r0") {
		t.Error("missing root node")
	}
	if !strings.Contains(out, "->") {
		t.Error("no edges in a compressed grammar's DAG")
	}
}
