module github.com/text-analytics/ntadoc

go 1.22
