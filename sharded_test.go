package ntadoc

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/nvm"
)

// shardDocs is large enough to split three ways with shared phrases across
// shard boundaries (so sharding measurably loses compression).
var shardDocs = []Document{
	{Name: "d0", Text: "the quick brown fox jumps over the lazy dog again and again"},
	{Name: "d1", Text: "the quick brown fox naps while the lazy dog jumps"},
	{Name: "d2", Text: "a lazy dog and a quick fox share the quick brown field"},
	{Name: "d3", Text: "entirely unrelated words appear here once in a while"},
	{Name: "d4", Text: "the quick brown fox jumps over the lazy dog once more"},
	{Name: "d5", Text: "words appear here once more while the fox naps"},
}

// TestShardedArchive checks the sharded compress path end to end: shard
// accounting, identical decompression, and the compression-for-parallelism
// trade (sharded archives are never smaller).
func TestShardedArchive(t *testing.T) {
	plain, err := Compress(shardDocs)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	for _, k := range []int{1, 2, 3} {
		a, err := CompressSharded(shardDocs, k)
		if err != nil {
			t.Fatalf("CompressSharded(k=%d): %v", k, err)
		}
		if a.NumShards() != k {
			t.Errorf("NumShards = %d, want %d", a.NumShards(), k)
		}
		if !reflect.DeepEqual(a.Decompress(), plain.Decompress()) {
			t.Errorf("k=%d: sharded archive decompresses differently", k)
		}
		if got, want := a.Stats().GrammarSymbols, plain.Stats().GrammarSymbols; got < want {
			t.Errorf("k=%d: sharded grammar smaller (%d) than unsharded (%d)", k, got, want)
		}
	}
}

// TestShardedArchiveSerialization round-trips the shard container through
// WriteTo/ReadArchive and checks the sharded engine still builds from it.
func TestShardedArchiveSerialization(t *testing.T) {
	a, err := CompressSharded(shardDocs, 3)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	a2, err := ReadArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadArchive: %v", err)
	}
	if a2.NumShards() != 3 {
		t.Fatalf("round-tripped NumShards = %d, want 3", a2.NumShards())
	}
	if !reflect.DeepEqual(a.Decompress(), a2.Decompress()) {
		t.Error("round-tripped sharded archive decompresses differently")
	}
	if !reflect.DeepEqual(a.DocumentNames(), a2.DocumentNames()) {
		t.Error("document names lost through shard container")
	}

	// Corrupting the shard section must be detected.
	raw := buf.Bytes()
	raw[len(raw)/3] ^= 0x40
	if _, err := ReadArchive(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted shard container accepted")
	}
}

// TestShardedEngineMatchesUnsharded checks every public task and the fused
// batch produce identical results on sharded and unsharded engines.
func TestShardedEngineMatchesUnsharded(t *testing.T) {
	plain, err := Compress(shardDocs)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	ref, err := NewEngine(plain, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer ref.Close()
	want, err := ref.RunBatch(AllTasks...)
	if err != nil {
		t.Fatalf("unsharded RunBatch: %v", err)
	}

	a, err := CompressSharded(shardDocs, 3)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	e, err := NewEngine(a, Options{})
	if err != nil {
		t.Fatalf("sharded NewEngine: %v", err)
	}
	defer e.Close()
	if e.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", e.NumShards())
	}
	got, err := e.RunBatch(AllTasks...)
	if err != nil {
		t.Fatalf("sharded RunBatch: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("sharded batch differs from unsharded")
	}

	wc, err := e.WordCount()
	if err != nil {
		t.Fatalf("sharded WordCount: %v", err)
	}
	if !reflect.DeepEqual(wc, want.WordCount) {
		t.Error("sharded WordCount differs")
	}
	rii, err := e.RankedInvertedIndex()
	if err != nil {
		t.Fatalf("sharded RankedInvertedIndex: %v", err)
	}
	if !reflect.DeepEqual(rii, want.RankedInvertedIndex) {
		t.Error("sharded RankedInvertedIndex differs")
	}

	init, trav := e.PhaseTimes()
	if init <= 0 || trav <= 0 {
		t.Errorf("sharded PhaseTimes = %v, %v", init, trav)
	}
	dev, dram := e.MemoryFootprint()
	if dev <= 0 || dram <= 0 {
		t.Errorf("sharded MemoryFootprint = %d, %d", dev, dram)
	}

	// The DRAM baseline accepts sharded archives via the merged view.
	dm, err := NewEngine(a, Options{Medium: MediumDRAM})
	if err != nil {
		t.Fatalf("DRAM engine on sharded archive: %v", err)
	}
	defer dm.Close()
	dwc, err := dm.WordCount()
	if err != nil {
		t.Fatalf("DRAM WordCount: %v", err)
	}
	if !reflect.DeepEqual(dwc, want.WordCount) {
		t.Error("DRAM engine on sharded archive differs")
	}
}

// TestReplicatedEngineFailover checks the public replication options: with
// Replicas set, killing one shard's primary mid-batch is masked by follower
// failover with bit-identical results, and replica reads stay identical too.
func TestReplicatedEngineFailover(t *testing.T) {
	plain, err := Compress(shardDocs)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	ref, err := NewEngine(plain, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer ref.Close()
	want, err := ref.RunBatch(AllTasks...)
	if err != nil {
		t.Fatalf("unsharded RunBatch: %v", err)
	}
	a, err := CompressSharded(shardDocs, 3)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	e, err := NewEngine(a, Options{Replicas: 1, Persistence: OperationLevel})
	if err != nil {
		t.Fatalf("replicated NewEngine: %v", err)
	}
	defer e.Close()
	dev := e.sh.Shard(1).Device()
	dev.FailFromPersistEvent(dev.PersistEvents() + 1)
	got, err := e.RunBatch(AllTasks...)
	if err != nil {
		t.Fatalf("failover did not mask the primary death: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("failover batch differs from unsharded")
	}
	if e.sh.FailoverCount() == 0 {
		t.Error("no failover performed despite the armed primary")
	}

	rr, err := NewEngine(a, Options{Replicas: 1, ReplicaReads: true})
	if err != nil {
		t.Fatalf("replica-read NewEngine: %v", err)
	}
	defer rr.Close()
	got, err = rr.RunBatch(AllTasks...)
	if err != nil {
		t.Fatalf("replica-read RunBatch: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("replica-read batch differs from unsharded")
	}
}

// TestRunBatchShardError asserts the typed scatter-gather error surfaces
// through the public batch API: with no replica to fall over to, the error
// names the failed shard and carries the device error in its chain.
func TestRunBatchShardError(t *testing.T) {
	a, err := CompressSharded(shardDocs, 3)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	e, err := NewEngine(a, Options{Persistence: OperationLevel})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	const victim = 2
	dev := e.sh.Shard(victim).Device()
	dev.FailFromPersistEvent(dev.PersistEvents() + 1)
	_, err = e.RunBatch(AllTasks...)
	if err == nil {
		t.Fatal("armed shard produced no error")
	}
	var sf *core.ErrShardFailed
	if !errors.As(err, &sf) {
		t.Fatalf("err = %v, want core.ErrShardFailed in chain", err)
	}
	if sf.Shard != victim {
		t.Errorf("ErrShardFailed.Shard = %d, want %d", sf.Shard, victim)
	}
	if !errors.Is(err, nvm.ErrFailPoint) {
		t.Errorf("err = %v, want nvm.ErrFailPoint in chain", err)
	}
}

// TestSharedFormRoundTrip checks the unified (shared-rule-table) form is
// what a sharded archive serializes, that it survives the round trip
// exactly, and that re-serialization is byte-identical (deterministic).
func TestSharedFormRoundTrip(t *testing.T) {
	a, err := CompressSharded(shardDocs, 3)
	if err != nil {
		t.Fatalf("CompressSharded: %v", err)
	}
	if a.shared == nil {
		t.Fatal("sharded archive carries no unified form")
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	a2, err := ReadArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadArchive: %v", err)
	}
	if !reflect.DeepEqual(a2.shared, a.shared) {
		t.Fatal("unified form changed through serialization")
	}
	var buf2 bytes.Buffer
	if _, err := a2.WriteTo(&buf2); err != nil {
		t.Fatalf("re-serialize: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization not byte-identical")
	}
}
