package ntadoc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/dict"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/tadoc"
)

// Medium selects the simulated storage the compressed data lives on.
type Medium int

// Supported media.  NVM is the system's target; SSD and HDD reproduce the
// paper's Figure 7 comparison points; DRAM runs the original TADOC engine
// (the paper's theoretical upper bound) with no device simulation.
const (
	MediumNVM Medium = iota
	MediumDRAM
	MediumSSD
	MediumHDD
)

// Persistence selects the paper's §IV-E persistence strategy.
type Persistence int

// Persistence strategies.
const (
	// PhaseLevel persists at phase boundaries (cheap; recovery restarts
	// the interrupted phase).
	PhaseLevel Persistence = iota
	// OperationLevel additionally redo-logs every counter mutation with a
	// per-operation fence (write-amplified; recovery replays the log).
	OperationLevel
)

// Options configures an analytics engine.
type Options struct {
	// Medium is the storage the compressed data lives on (default NVM).
	Medium Medium
	// Persistence selects the persistence strategy (N-TADOC media only).
	Persistence Persistence
	// PoolPath makes the NVM pool file-backed, surviving process restarts.
	PoolPath string
	// NoSequences skips the sequence-analytics preprocessing (head/tail
	// structures, per-rule n-gram tables) at engine construction.  It makes
	// construction substantially cheaper; SequenceCount and
	// RankedInvertedIndex then return an error.
	NoSequences bool
	// Replicas keeps this many follower devices per shard (sharded N-TADOC
	// media only): each shard ships every committed durable delta to its
	// followers, and a query falls over to a follower — transparently, with
	// bit-identical results — when the shard's primary device fails.
	Replicas int
	// ReplicaReads lets multi-task batches split each shard's work between
	// its primary and a read replica recovered from a follower image,
	// shortening the slowest lane.  Requires Replicas >= 1.
	ReplicaReads bool
	// IngestCapacity reserves this many bytes of durable append-log space per
	// shard (N-TADOC media only): the engine then accepts live Append calls,
	// serving them from per-shard delta grammars without recompressing the
	// base.  Zero disables ingestion; a full log returns ErrIngestFull until
	// the corpus is recompressed.
	IngestCapacity int64
}

// TermCount is a word with its frequency.
type TermCount struct {
	Term  string
	Count uint64
}

// DocCount is a document with an occurrence count.
type DocCount struct {
	Doc   string
	Count uint64
}

// Engine runs the six analytics tasks over an archive.  Engines built on
// MediumNVM/SSD/HDD are N-TADOC instances over a simulated persistent
// device; MediumDRAM is the original TADOC baseline.  For a sharded archive
// on N-TADOC media the engine is a sharded engine: one device and pool per
// shard, built in parallel, with queries scattered across the shards and
// gathered into corpus-wide results.
type Engine struct {
	a     *Archive
	inner analytics.Engine
	nt    *core.Engine        // non-nil on unsharded N-TADOC media
	sh    *core.ShardedEngine // non-nil on sharded N-TADOC media

	namesMu sync.RWMutex
	names   []string // guarded by namesMu: global document index -> name

	// appendMu serializes public Append calls: the novel-word window
	// (dictionary growth since the last committed batch) spans tokenization
	// and the core commit, so the two must not interleave.
	appendMu       sync.Mutex
	committedVocab int // guarded by appendMu: vocabulary covered by committed batches
}

// Sentinel ingestion errors, re-exported for errors.Is matching.
var (
	// ErrNoIngest reports an Append on an engine built without ingestion
	// support (DRAM medium or Options.IngestCapacity == 0).
	ErrNoIngest = core.ErrNoIngest
	// ErrIngestFull reports an Append that does not fit the remaining
	// durable log capacity; the corpus must be recompressed.
	ErrIngestFull = core.ErrIngestFull
	// ErrCompacting reports an Append rejected because a compaction swap is
	// in progress; the append can simply be retried.
	ErrCompacting = core.ErrCompacting
)

// NewEngine builds an engine for the archive.
func NewEngine(a *Archive, opts Options) (*Engine, error) {
	// An archive carrying unfolded appended documents (from a prior engine's
	// Append calls) folds them first, so the new engine serves the full
	// corpus.
	if err := a.fold(); err != nil {
		return nil, err
	}
	e := &Engine{a: a, names: a.DocumentNames(), committedVocab: a.d.Len()}
	if opts.Medium == MediumDRAM {
		// The DRAM baseline has no per-shard devices to parallelize over;
		// it runs on the whole-corpus grammar view.
		inner, err := tadoc.New(a.g, a.d, tadoc.Auto)
		if err != nil {
			return nil, err
		}
		e.inner = inner
		return e, nil
	}
	kind := nvm.KindNVM
	switch opts.Medium {
	case MediumSSD:
		kind = nvm.KindSSD
	case MediumHDD:
		kind = nvm.KindHDD
	}
	persistence := core.PhaseLevel
	if opts.Persistence == OperationLevel {
		persistence = core.OpLevel
	}
	copts := core.Options{
		Kind:        kind,
		Path:        opts.PoolPath,
		Persistence: persistence,
		Sequences:   !opts.NoSequences,
		IngestCap:   opts.IngestCapacity,
	}
	if a.shards != nil {
		if opts.Replicas > 0 {
			copts.Replication = core.Replication{
				Followers:    opts.Replicas,
				Mode:         core.ShipSync,
				ReplicaReads: opts.ReplicaReads,
			}
		}
		if a.shared != nil {
			// Tie every shard pool to this unified build: recovery rejects a
			// device set mixing shards of different shared-rule containers.
			copts.BuildTag = a.shared.Checksum()
		}
		sh, err := core.NewSharded(a.shards, a.d, copts)
		if err != nil {
			return nil, err
		}
		e.inner = sh
		e.sh = sh
		return e, nil
	}
	nt, err := core.New(a.g, a.d, copts)
	if err != nil {
		return nil, err
	}
	e.inner = nt
	e.nt = nt
	return e, nil
}

// Close releases the engine's simulated devices (no-op for DRAM engines).
func (e *Engine) Close() error {
	if e.nt != nil {
		return e.nt.Close()
	}
	if e.sh != nil {
		return e.sh.Close()
	}
	return nil
}

// NumShards returns the engine's shard count (1 for unsharded engines).
func (e *Engine) NumShards() int {
	if e.sh != nil {
		return e.sh.NumShards()
	}
	return 1
}

// Append tokenizes docs and appends them to the live corpus as one durable
// batch.  The batch is written to the engine's append log (body first, then
// an atomic header commit), so a crash at any point recovers to "batch fully
// visible" or "batch absent" — never a torn state.  Appended documents are
// served from per-shard delta grammars merged with base results at query
// time; results are bit-identical to recompressing the whole corpus, and
// concurrent queries are never blocked (each sees a consistent corpus cut).
//
// Requires an N-TADOC medium with Options.IngestCapacity > 0; otherwise
// ErrNoIngest.  ErrCompacting means a compaction swap was in progress and
// the append can simply be retried; ErrIngestFull means the log is
// exhausted and the corpus must be recompressed.
func (e *Engine) Append(docs []Document) error {
	if e.nt == nil && e.sh == nil {
		return fmt.Errorf("ntadoc: append: %w", ErrNoIngest)
	}
	if len(docs) == 0 {
		return nil
	}
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	var tk dict.Tokenizer
	ads := make([]core.AppendDoc, len(docs))
	tokens := make([][]uint32, len(docs))
	names := make([]string, len(docs))
	for i, doc := range docs {
		t := tk.EncodeString(e.a.d, doc.Text)
		ads[i] = core.AppendDoc{Name: doc.Name, Tokens: t}
		tokens[i], names[i] = t, doc.Name
	}
	// The batch's novel words are everything interned since the last
	// committed batch — including leftovers from a failed attempt, which
	// harmlessly ride along so recovery can always rebuild the dictionary.
	vocab := e.a.d.Len()
	novel := append([]string(nil), e.a.d.Words()[e.committedVocab:vocab]...)
	var err error
	if e.nt != nil {
		err = e.nt.Append(ads, uint32(vocab), novel)
	} else {
		err = e.sh.Append(ads, uint32(vocab), novel)
	}
	if err != nil {
		return err
	}
	e.committedVocab = vocab
	e.namesMu.Lock()
	e.names = append(e.names, names...)
	e.namesMu.Unlock()
	e.a.recordAppend(tokens, names)
	return nil
}

// CorpusEpoch returns the engine's corpus epoch: it advances on every
// committed append batch and every compaction, and serving layers key their
// result caches by it.  Zero for engines without ingestion.
func (e *Engine) CorpusEpoch() uint64 {
	if e.nt != nil {
		return e.nt.CorpusEpoch()
	}
	if e.sh != nil {
		return e.sh.CorpusEpoch()
	}
	return 0
}

// IngestStats is the observable ingestion state of an engine.
type IngestStats struct {
	Batches       uint64 // committed append batches
	AppendedDocs  uint64 // appended documents (including compacted ones)
	LogBytes      int64  // committed append-log bytes
	LogCapacity   int64  // append-log capacity
	DeltaDocs     int    // documents in the live (uncompacted) deltas
	DeltaSymbols  int64  // live delta grammar body symbols
	CompactedDocs uint32 // appended documents folded into the serving base
	Compactions   uint64 // compactions performed
}

// IngestStats reports the engine's ingestion state (zero value for engines
// without ingestion).
func (e *Engine) IngestStats() IngestStats {
	var st core.IngestStats
	switch {
	case e.nt != nil:
		st = e.nt.IngestStats()
	case e.sh != nil:
		st = e.sh.IngestStats()
	}
	return IngestStats{
		Batches:       st.Batches,
		AppendedDocs:  st.Docs,
		LogBytes:      st.LogBytes,
		LogCapacity:   st.LogCap,
		DeltaDocs:     st.DeltaDocs,
		DeltaSymbols:  st.DeltaSymbols,
		CompactedDocs: st.CompactedDocs,
		Compactions:   st.Compactions,
	}
}

// CompactionPolicy sets the thresholds at which AutoCompact folds live
// delta grammars back into the serving base.  Zero fields use defaults.
type CompactionPolicy struct {
	// MaxDeltaDocs triggers compaction once a shard's live delta holds more
	// than this many appended documents.
	MaxDeltaDocs int
	// MaxDeltaBytes triggers compaction once a shard's live delta grammar
	// exceeds this many bytes of body symbols.
	MaxDeltaBytes int64
	// Interval is the background worker's polling cadence.
	Interval time.Duration
}

// AutoCompact starts the background compaction worker: it polls the
// engine's delta sizes on the policy's cadence and folds deltas into the
// serving base whenever thresholds are crossed, keeping query cost over
// base+delta bounded while appends continue.  Compaction swaps never block
// queries (in-flight queries finish on their pinned snapshot).  The
// returned stop function shuts the worker down; it is a no-op for engines
// without ingestion.
func (e *Engine) AutoCompact(p CompactionPolicy) (stop func()) {
	var target core.Compactable
	switch {
	case e.nt != nil:
		target = e.nt
	case e.sh != nil:
		target = e.sh
	default:
		return func() {}
	}
	c := core.StartCompactor(target, core.CompactionPolicy{
		MaxDeltaDocs:  p.MaxDeltaDocs,
		MaxDeltaBytes: p.MaxDeltaBytes,
		Interval:      p.Interval,
	})
	return c.Stop
}

// Compact folds all live delta grammars into the serving base immediately.
func (e *Engine) Compact() error {
	force := core.CompactionPolicy{MaxDeltaDocs: -1, MaxDeltaBytes: -1}
	switch {
	case e.nt != nil:
		_, err := e.nt.CompactIfNeeded(force)
		return err
	case e.sh != nil:
		_, err := e.sh.CompactIfNeeded(force)
		return err
	}
	return fmt.Errorf("ntadoc: compact: %w", ErrNoIngest)
}

// WordCount returns the total occurrences of each word across the archive.
func (e *Engine) WordCount() (map[string]uint64, error) {
	counts, err := e.inner.WordCount()
	if err != nil {
		return nil, err
	}
	return e.convWordCounts(counts), nil
}

// Sort returns the distinct words with counts in alphabetical order.
func (e *Engine) Sort() ([]TermCount, error) {
	wf, err := e.inner.Sort()
	if err != nil {
		return nil, err
	}
	return e.convTermCounts(wf), nil
}

// TermVectors returns each document's words by descending frequency,
// truncated to k entries when k > 0.
func (e *Engine) TermVectors(k int) ([][]TermCount, error) {
	tv, err := e.inner.TermVectors(k)
	if err != nil {
		return nil, err
	}
	return e.convTermVectors(tv), nil
}

// InvertedIndex maps each word to the names of the documents containing it,
// in document order.
func (e *Engine) InvertedIndex() (map[string][]string, error) {
	inv, err := e.inner.InvertedIndex()
	if err != nil {
		return nil, err
	}
	return e.convInvertedIndex(inv), nil
}

// SequenceCount returns the occurrences of each three-word sequence, keyed
// by the space-joined words.
func (e *Engine) SequenceCount() (map[string]uint64, error) {
	sc, err := e.inner.SequenceCount()
	if err != nil {
		return nil, err
	}
	return e.convSequenceCounts(sc), nil
}

// RankedInvertedIndex maps each three-word sequence to its documents in
// decreasing order of occurrence.
func (e *Engine) RankedInvertedIndex() (map[string][]DocCount, error) {
	rii, err := e.inner.RankedInvertedIndex()
	if err != nil {
		return nil, err
	}
	return e.convRankedIndex(rii), nil
}

// TopTerms is a convenience: the n most frequent words across the archive,
// ties broken alphabetically.
func (e *Engine) TopTerms(n int) ([]TermCount, error) {
	counts, err := e.WordCount()
	if err != nil {
		return nil, err
	}
	out := make([]TermCount, 0, len(counts))
	for t, c := range counts {
		out = append(out, TermCount{Term: t, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// PhaseTimes reports the modeled initialization and graph-traversal times of
// the last task (N-TADOC engines only; zero for DRAM engines).
func (e *Engine) PhaseTimes() (init, traversal time.Duration) {
	if e.nt != nil {
		return e.nt.InitSpan().Total(), e.nt.LastTraversalSpan().Total()
	}
	if e.sh != nil {
		return e.sh.InitSpan().Total(), e.sh.LastTraversalSpan().Total()
	}
	return 0, 0
}

// MemoryFootprint reports the engine's storage residency: pool bytes on the
// simulated device and estimated DRAM bytes.
func (e *Engine) MemoryFootprint() (deviceBytes, dramBytes int64) {
	if e.nt != nil {
		return e.nt.NVMBytes(), e.nt.DRAMBytes()
	}
	if e.sh != nil {
		return e.sh.NVMBytes(), e.sh.DRAMBytes()
	}
	if t, ok := e.inner.(*tadoc.Engine); ok {
		return 0, t.DRAMBytes()
	}
	return 0, 0
}
