package ntadoc

import (
	"sort"
	"time"

	"github.com/text-analytics/ntadoc/internal/analytics"
	"github.com/text-analytics/ntadoc/internal/core"
	"github.com/text-analytics/ntadoc/internal/nvm"
	"github.com/text-analytics/ntadoc/internal/tadoc"
)

// Medium selects the simulated storage the compressed data lives on.
type Medium int

// Supported media.  NVM is the system's target; SSD and HDD reproduce the
// paper's Figure 7 comparison points; DRAM runs the original TADOC engine
// (the paper's theoretical upper bound) with no device simulation.
const (
	MediumNVM Medium = iota
	MediumDRAM
	MediumSSD
	MediumHDD
)

// Persistence selects the paper's §IV-E persistence strategy.
type Persistence int

// Persistence strategies.
const (
	// PhaseLevel persists at phase boundaries (cheap; recovery restarts
	// the interrupted phase).
	PhaseLevel Persistence = iota
	// OperationLevel additionally redo-logs every counter mutation with a
	// per-operation fence (write-amplified; recovery replays the log).
	OperationLevel
)

// Options configures an analytics engine.
type Options struct {
	// Medium is the storage the compressed data lives on (default NVM).
	Medium Medium
	// Persistence selects the persistence strategy (N-TADOC media only).
	Persistence Persistence
	// PoolPath makes the NVM pool file-backed, surviving process restarts.
	PoolPath string
	// NoSequences skips the sequence-analytics preprocessing (head/tail
	// structures, per-rule n-gram tables) at engine construction.  It makes
	// construction substantially cheaper; SequenceCount and
	// RankedInvertedIndex then return an error.
	NoSequences bool
	// Replicas keeps this many follower devices per shard (sharded N-TADOC
	// media only): each shard ships every committed durable delta to its
	// followers, and a query falls over to a follower — transparently, with
	// bit-identical results — when the shard's primary device fails.
	Replicas int
	// ReplicaReads lets multi-task batches split each shard's work between
	// its primary and a read replica recovered from a follower image,
	// shortening the slowest lane.  Requires Replicas >= 1.
	ReplicaReads bool
}

// TermCount is a word with its frequency.
type TermCount struct {
	Term  string
	Count uint64
}

// DocCount is a document with an occurrence count.
type DocCount struct {
	Doc   string
	Count uint64
}

// Engine runs the six analytics tasks over an archive.  Engines built on
// MediumNVM/SSD/HDD are N-TADOC instances over a simulated persistent
// device; MediumDRAM is the original TADOC baseline.  For a sharded archive
// on N-TADOC media the engine is a sharded engine: one device and pool per
// shard, built in parallel, with queries scattered across the shards and
// gathered into corpus-wide results.
type Engine struct {
	a     *Archive
	inner analytics.Engine
	nt    *core.Engine        // non-nil on unsharded N-TADOC media
	sh    *core.ShardedEngine // non-nil on sharded N-TADOC media
	names []string
}

// NewEngine builds an engine for the archive.
func NewEngine(a *Archive, opts Options) (*Engine, error) {
	e := &Engine{a: a, names: a.DocumentNames()}
	if opts.Medium == MediumDRAM {
		// The DRAM baseline has no per-shard devices to parallelize over;
		// it runs on the whole-corpus grammar view.
		inner, err := tadoc.New(a.g, a.d, tadoc.Auto)
		if err != nil {
			return nil, err
		}
		e.inner = inner
		return e, nil
	}
	kind := nvm.KindNVM
	switch opts.Medium {
	case MediumSSD:
		kind = nvm.KindSSD
	case MediumHDD:
		kind = nvm.KindHDD
	}
	persistence := core.PhaseLevel
	if opts.Persistence == OperationLevel {
		persistence = core.OpLevel
	}
	copts := core.Options{
		Kind:        kind,
		Path:        opts.PoolPath,
		Persistence: persistence,
		Sequences:   !opts.NoSequences,
	}
	if a.shards != nil {
		if opts.Replicas > 0 {
			copts.Replication = core.Replication{
				Followers:    opts.Replicas,
				Mode:         core.ShipSync,
				ReplicaReads: opts.ReplicaReads,
			}
		}
		if a.shared != nil {
			// Tie every shard pool to this unified build: recovery rejects a
			// device set mixing shards of different shared-rule containers.
			copts.BuildTag = a.shared.Checksum()
		}
		sh, err := core.NewSharded(a.shards, a.d, copts)
		if err != nil {
			return nil, err
		}
		e.inner = sh
		e.sh = sh
		return e, nil
	}
	nt, err := core.New(a.g, a.d, copts)
	if err != nil {
		return nil, err
	}
	e.inner = nt
	e.nt = nt
	return e, nil
}

// Close releases the engine's simulated devices (no-op for DRAM engines).
func (e *Engine) Close() error {
	if e.nt != nil {
		return e.nt.Close()
	}
	if e.sh != nil {
		return e.sh.Close()
	}
	return nil
}

// NumShards returns the engine's shard count (1 for unsharded engines).
func (e *Engine) NumShards() int {
	if e.sh != nil {
		return e.sh.NumShards()
	}
	return 1
}

// WordCount returns the total occurrences of each word across the archive.
func (e *Engine) WordCount() (map[string]uint64, error) {
	counts, err := e.inner.WordCount()
	if err != nil {
		return nil, err
	}
	return e.convWordCounts(counts), nil
}

// Sort returns the distinct words with counts in alphabetical order.
func (e *Engine) Sort() ([]TermCount, error) {
	wf, err := e.inner.Sort()
	if err != nil {
		return nil, err
	}
	return e.convTermCounts(wf), nil
}

// TermVectors returns each document's words by descending frequency,
// truncated to k entries when k > 0.
func (e *Engine) TermVectors(k int) ([][]TermCount, error) {
	tv, err := e.inner.TermVectors(k)
	if err != nil {
		return nil, err
	}
	return e.convTermVectors(tv), nil
}

// InvertedIndex maps each word to the names of the documents containing it,
// in document order.
func (e *Engine) InvertedIndex() (map[string][]string, error) {
	inv, err := e.inner.InvertedIndex()
	if err != nil {
		return nil, err
	}
	return e.convInvertedIndex(inv), nil
}

// SequenceCount returns the occurrences of each three-word sequence, keyed
// by the space-joined words.
func (e *Engine) SequenceCount() (map[string]uint64, error) {
	sc, err := e.inner.SequenceCount()
	if err != nil {
		return nil, err
	}
	return e.convSequenceCounts(sc), nil
}

// RankedInvertedIndex maps each three-word sequence to its documents in
// decreasing order of occurrence.
func (e *Engine) RankedInvertedIndex() (map[string][]DocCount, error) {
	rii, err := e.inner.RankedInvertedIndex()
	if err != nil {
		return nil, err
	}
	return e.convRankedIndex(rii), nil
}

// TopTerms is a convenience: the n most frequent words across the archive,
// ties broken alphabetically.
func (e *Engine) TopTerms(n int) ([]TermCount, error) {
	counts, err := e.WordCount()
	if err != nil {
		return nil, err
	}
	out := make([]TermCount, 0, len(counts))
	for t, c := range counts {
		out = append(out, TermCount{Term: t, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// PhaseTimes reports the modeled initialization and graph-traversal times of
// the last task (N-TADOC engines only; zero for DRAM engines).
func (e *Engine) PhaseTimes() (init, traversal time.Duration) {
	if e.nt != nil {
		return e.nt.InitSpan().Total(), e.nt.LastTraversalSpan().Total()
	}
	if e.sh != nil {
		return e.sh.InitSpan().Total(), e.sh.LastTraversalSpan().Total()
	}
	return 0, 0
}

// MemoryFootprint reports the engine's storage residency: pool bytes on the
// simulated device and estimated DRAM bytes.
func (e *Engine) MemoryFootprint() (deviceBytes, dramBytes int64) {
	if e.nt != nil {
		return e.nt.NVMBytes(), e.nt.DRAMBytes()
	}
	if e.sh != nil {
		return e.sh.NVMBytes(), e.sh.DRAMBytes()
	}
	if t, ok := e.inner.(*tadoc.Engine); ok {
		return 0, t.DRAMBytes()
	}
	return 0, 0
}
