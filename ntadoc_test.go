package ntadoc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

var testDocs = []Document{
	{Name: "fableA", Text: "the quick brown fox jumps over the lazy dog. the quick brown fox naps."},
	{Name: "fableB", Text: "a lazy dog and a quick fox: the quick brown fox again!"},
	{Name: "fableC", Text: "entirely unrelated words appear here once."},
}

func compressDocs(t *testing.T) *Archive {
	t.Helper()
	a, err := Compress(testDocs)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	return a
}

func TestCompressStats(t *testing.T) {
	a := compressDocs(t)
	st := a.Stats()
	if st.Documents != 3 {
		t.Errorf("Documents = %d", st.Documents)
	}
	if st.Vocabulary == 0 || st.Tokens == 0 || st.Rules == 0 {
		t.Errorf("Stats = %+v", st)
	}
	if st.CompressionRate <= 0 || st.CompressionRate > 1.2 {
		t.Errorf("CompressionRate = %f", st.CompressionRate)
	}
}

func TestDecompressRoundTrip(t *testing.T) {
	a := compressDocs(t)
	docs := a.Decompress()
	if len(docs) != len(testDocs) {
		t.Fatalf("got %d docs", len(docs))
	}
	var tkWords []string
	for i, doc := range docs {
		if doc.Name != testDocs[i].Name {
			t.Errorf("doc %d name = %q", i, doc.Name)
		}
		// Tokenization lowercases and strips punctuation; compare at the
		// token level.
		tkWords = strings.Fields(doc.Text)
		want := normalizeWords(testDocs[i].Text)
		if !reflect.DeepEqual(tkWords, want) {
			t.Errorf("doc %d round trip:\n got %v\nwant %v", i, tkWords, want)
		}
	}
}

func normalizeWords(text string) []string {
	fields := strings.Fields(strings.ToLower(text))
	out := fields[:0]
	for _, f := range fields {
		f = strings.Trim(f, ".,:!?()\"'")
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func TestArchiveSerializationRoundTrip(t *testing.T) {
	a := compressDocs(t)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	a2, err := ReadArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadArchive: %v", err)
	}
	if !reflect.DeepEqual(a.Decompress(), a2.Decompress()) {
		t.Error("round-tripped archive decompresses differently")
	}
	if !reflect.DeepEqual(a.DocumentNames(), a2.DocumentNames()) {
		t.Error("document names lost")
	}
}

func TestReadArchiveRejectsGarbage(t *testing.T) {
	if _, err := ReadArchive(bytes.NewReader([]byte("not an archive"))); err == nil {
		t.Error("expected error")
	}
}

func TestEnginesAgreeOnAllTasks(t *testing.T) {
	a := compressDocs(t)
	dram, err := NewEngine(a, Options{Medium: MediumDRAM})
	if err != nil {
		t.Fatalf("DRAM engine: %v", err)
	}
	nvmEng, err := NewEngine(a, Options{Medium: MediumNVM})
	if err != nil {
		t.Fatalf("NVM engine: %v", err)
	}
	defer nvmEng.Close()

	wc1, err := dram.WordCount()
	if err != nil {
		t.Fatalf("DRAM WordCount: %v", err)
	}
	wc2, err := nvmEng.WordCount()
	if err != nil {
		t.Fatalf("NVM WordCount: %v", err)
	}
	if !reflect.DeepEqual(wc1, wc2) {
		t.Error("word counts disagree across engines")
	}
	if wc1["the"] != 4 || wc1["fox"] != 4 {
		t.Errorf("counts: the=%d fox=%d", wc1["the"], wc1["fox"])
	}

	s1, _ := dram.Sort()
	s2, _ := nvmEng.Sort()
	if !reflect.DeepEqual(s1, s2) {
		t.Error("sort disagrees")
	}
	for i := 1; i < len(s1); i++ {
		if s1[i-1].Term >= s1[i].Term {
			t.Fatalf("sort not alphabetical at %d: %q >= %q", i, s1[i-1].Term, s1[i].Term)
		}
	}

	tv1, _ := dram.TermVectors(3)
	tv2, _ := nvmEng.TermVectors(3)
	if !reflect.DeepEqual(tv1, tv2) {
		t.Error("term vectors disagree")
	}

	inv1, _ := dram.InvertedIndex()
	inv2, _ := nvmEng.InvertedIndex()
	if !reflect.DeepEqual(inv1, inv2) {
		t.Error("inverted indexes disagree")
	}
	if got := inv1["fox"]; !reflect.DeepEqual(got, []string{"fableA", "fableB"}) {
		t.Errorf("fox postings = %v", got)
	}

	sc1, _ := dram.SequenceCount()
	sc2, _ := nvmEng.SequenceCount()
	if !reflect.DeepEqual(sc1, sc2) {
		t.Error("sequence counts disagree")
	}
	if sc1["the quick brown"] != 3 {
		t.Errorf("sequence 'the quick brown' = %d", sc1["the quick brown"])
	}

	rii1, _ := dram.RankedInvertedIndex()
	rii2, _ := nvmEng.RankedInvertedIndex()
	if !reflect.DeepEqual(rii1, rii2) {
		t.Error("ranked inverted indexes disagree")
	}
	if postings := rii1["the quick brown"]; len(postings) != 2 ||
		postings[0].Doc != "fableA" || postings[0].Count != 2 {
		t.Errorf("'the quick brown' postings = %v", postings)
	}
}

func TestNoSequencesOption(t *testing.T) {
	a := compressDocs(t)
	e, err := NewEngine(a, Options{NoSequences: true})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	if _, err := e.SequenceCount(); err == nil {
		t.Error("sequence task should fail without sequence support")
	}
	if _, err := e.WordCount(); err != nil {
		t.Errorf("WordCount: %v", err)
	}
}

func TestSSDAndHDDEngines(t *testing.T) {
	a := compressDocs(t)
	for _, m := range []Medium{MediumSSD, MediumHDD} {
		e, err := NewEngine(a, Options{Medium: m, NoSequences: true})
		if err != nil {
			t.Fatalf("medium %d: %v", m, err)
		}
		wc, err := e.WordCount()
		if err != nil || wc["fox"] != 4 {
			t.Errorf("medium %d: fox = %d, %v", m, wc["fox"], err)
		}
		e.Close()
	}
}

func TestOperationLevelEngine(t *testing.T) {
	a := compressDocs(t)
	e, err := NewEngine(a, Options{Persistence: OperationLevel, NoSequences: true})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	wc, err := e.WordCount()
	if err != nil || wc["the"] != 4 {
		t.Errorf("op-level WordCount: the=%d, %v", wc["the"], err)
	}
}

func TestTopTerms(t *testing.T) {
	a := compressDocs(t)
	e, err := NewEngine(a, Options{Medium: MediumDRAM})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	top, err := e.TopTerms(2)
	if err != nil {
		t.Fatalf("TopTerms: %v", err)
	}
	// fox, quick, and the all occur 4 times; alphabetical tie-break puts
	// fox then quick first.
	if len(top) != 2 || top[0].Term != "fox" || top[1].Term != "quick" || top[0].Count != 4 {
		t.Errorf("TopTerms = %v", top)
	}
}

func TestPhaseTimesAndFootprint(t *testing.T) {
	a := compressDocs(t)
	e, err := NewEngine(a, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	if _, err := e.WordCount(); err != nil {
		t.Fatal(err)
	}
	init, trav := e.PhaseTimes()
	if init <= 0 || trav <= 0 {
		t.Errorf("phase times = %v, %v", init, trav)
	}
	dev, dram := e.MemoryFootprint()
	if dev <= 0 || dram <= 0 {
		t.Errorf("footprint = %d, %d", dev, dram)
	}

	dramEng, _ := NewEngine(a, Options{Medium: MediumDRAM})
	dramEng.WordCount()
	dev2, dram2 := dramEng.MemoryFootprint()
	if dev2 != 0 || dram2 <= 0 {
		t.Errorf("DRAM engine footprint = %d, %d", dev2, dram2)
	}
}

func TestCompressEmptyAndSingle(t *testing.T) {
	a, err := Compress(nil)
	if err != nil {
		t.Fatalf("Compress(nil): %v", err)
	}
	if st := a.Stats(); st.Documents != 0 {
		t.Errorf("Documents = %d", st.Documents)
	}
	a2, err := Compress([]Document{{Name: "one", Text: "hello"}})
	if err != nil {
		t.Fatalf("Compress(single): %v", err)
	}
	e, err := NewEngine(a2, Options{Medium: MediumDRAM})
	if err != nil {
		t.Fatal(err)
	}
	wc, _ := e.WordCount()
	if wc["hello"] != 1 {
		t.Errorf("hello = %d", wc["hello"])
	}
}

func TestFileBackedPool(t *testing.T) {
	a := compressDocs(t)
	path := t.TempDir() + "/pool.nvm"
	e, err := NewEngine(a, Options{PoolPath: path, NoSequences: true})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.WordCount(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
