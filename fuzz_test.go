package ntadoc

import (
	"bytes"
	"strings"
	"testing"

	"github.com/text-analytics/ntadoc/internal/dict"
)

// Fuzz targets for the three on-disk parsers.  They assert the parser
// contract: arbitrary input either fails cleanly or yields a structurally
// valid object, and valid serializations round-trip.  Run longer with
// `go test -fuzz FuzzReadArchive`.

func FuzzReadArchive(f *testing.F) {
	// Seed with a valid archive and a few mutations.
	a, err := Compress([]Document{
		{Name: "x", Text: "to be or not to be that is the question"},
		{Name: "y", Text: "to be or not to be whatever"},
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	a.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("NTDCCFG1 garbage"))
	trunc := buf.Bytes()[:buf.Len()/2]
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadArchive(bytes.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		// Anything accepted must be internally consistent: stats compute
		// and decompression terminates with the declared document count.
		st := got.Stats()
		docs := got.Decompress()
		if len(docs) != st.Documents {
			t.Fatalf("decompressed %d docs, stats say %d", len(docs), st.Documents)
		}
	})
}

func FuzzCompressRoundTrip(f *testing.F) {
	f.Add("hello world hello world", "second doc here")
	f.Add("", "")
	f.Add("a a a a a a a a", "b")
	f.Add("punct!!! and, (more) punct...", "UPPER lower MiXeD")

	f.Fuzz(func(t *testing.T, text1, text2 string) {
		if len(text1)+len(text2) > 1<<14 {
			t.Skip("cap input size")
		}
		a, err := Compress([]Document{{Name: "1", Text: text1}, {Name: "2", Text: text2}})
		if err != nil {
			t.Fatalf("Compress: %v", err)
		}
		docs := a.Decompress()
		if len(docs) != 2 {
			t.Fatalf("decompressed %d docs", len(docs))
		}
		// Round trip is exact at the token level.
		for i, orig := range []string{text1, text2} {
			want := normalizeTokens(orig)
			got := strings.Fields(docs[i].Text)
			if len(got) != len(want) {
				t.Fatalf("doc %d: %d tokens, want %d", i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("doc %d token %d: %q != %q", i, j, got[j], want[j])
				}
			}
		}
		// Serialization round-trips.
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if _, err := ReadArchive(&buf); err != nil {
			t.Fatalf("ReadArchive of own output: %v", err)
		}
	})
}

// normalizeTokens is the fuzz oracle for the default tokenizer: it reuses
// the tokenizer itself, so the property under test is the compression round
// trip, not tokenizer equivalence.
func normalizeTokens(text string) []string {
	var tk dict.Tokenizer
	return tk.Split(text)
}
