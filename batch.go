package ntadoc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/text-analytics/ntadoc/internal/analytics"
)

// Task names one of the six analytics tasks for batch execution.
type Task int

// The analytics tasks, in the paper's order.
const (
	TaskWordCount Task = iota
	TaskSort
	TaskTermVectors
	TaskInvertedIndex
	TaskSequenceCount
	TaskRankedInvertedIndex
)

// AllTasks lists every task in the paper's order.
var AllTasks = []Task{
	TaskWordCount, TaskSort, TaskTermVectors,
	TaskInvertedIndex, TaskSequenceCount, TaskRankedInvertedIndex,
}

// String returns the task's command-line name.
func (t Task) String() string {
	switch t {
	case TaskWordCount:
		return "wordcount"
	case TaskSort:
		return "sort"
	case TaskTermVectors:
		return "termvector"
	case TaskInvertedIndex:
		return "invertedindex"
	case TaskSequenceCount:
		return "seqcount"
	case TaskRankedInvertedIndex:
		return "rankedindex"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// ParseTask resolves a command-line task name.
func ParseTask(s string) (Task, error) {
	for _, t := range AllTasks {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("ntadoc: unknown task %q", s)
}

// NeedsSequences reports whether the task requires sequence preprocessing
// (i.e. it fails on engines built with NoSequences).
func (t Task) NeedsSequences() bool {
	return t == TaskSequenceCount || t == TaskRankedInvertedIndex
}

// op returns the task's registered analytics op; k parameterizes the
// term-vector length (0 selects the default).
func (t Task) op(k int) (analytics.Op, error) {
	switch t {
	case TaskWordCount:
		return analytics.WordCountOp{}, nil
	case TaskSort:
		return analytics.SortOp{}, nil
	case TaskTermVectors:
		if k <= 0 {
			k = analytics.DefaultTermVectorK
		}
		return analytics.TermVectorsOp{K: k}, nil
	case TaskInvertedIndex:
		return analytics.InvertedIndexOp{}, nil
	case TaskSequenceCount:
		return analytics.SequenceCountOp{}, nil
	case TaskRankedInvertedIndex:
		return analytics.RankedInvertedIndexOp{}, nil
	default:
		return nil, fmt.Errorf("ntadoc: unknown task %d", int(t))
	}
}

// BatchSpec is a canonicalized batch request: the deduplicated tasks in the
// paper's order plus the batch's only parameter, the term-vector length.
// Canonical form is what makes request shaping shareable — the CLI's
// one-shot path, the daemon's coalescer (which keys in-flight singleflights
// by Signature), and its result cache all reduce a request to the same
// BatchSpec, so "sort,wordcount" and "wordcount,sort" are one batch
// everywhere.  The zero value is an empty batch.
type BatchSpec struct {
	tasks []Task
	k     int
}

// NewBatchSpec canonicalizes a batch request: tasks are deduplicated and
// ordered canonically (the paper's task order), and termVectorK is dropped
// unless the batch computes term vectors with a non-default length.
// Unknown Task values are preserved and surface as errors at execution.
func NewBatchSpec(tasks []Task, termVectorK int) BatchSpec {
	uniq := make([]Task, 0, len(tasks))
	seen := make(map[Task]bool, len(tasks))
	for _, t := range tasks {
		if !seen[t] {
			seen[t] = true
			uniq = append(uniq, t)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	if termVectorK <= 0 || termVectorK == analytics.DefaultTermVectorK || !seen[TaskTermVectors] {
		termVectorK = 0
	}
	return BatchSpec{tasks: uniq, k: termVectorK}
}

// ParseBatchSpec canonicalizes a batch request given by task names.
func ParseBatchSpec(names []string, termVectorK int) (BatchSpec, error) {
	tasks := make([]Task, 0, len(names))
	for _, name := range names {
		t, err := ParseTask(strings.TrimSpace(name))
		if err != nil {
			return BatchSpec{}, err
		}
		tasks = append(tasks, t)
	}
	return NewBatchSpec(tasks, termVectorK), nil
}

// Tasks returns the canonical task list.
func (b BatchSpec) Tasks() []Task { return append([]Task(nil), b.tasks...) }

// TermVectorK returns the term-vector length (0 means the default).
func (b BatchSpec) TermVectorK() int { return b.k }

// NeedsSequences reports whether any task in the batch requires sequence
// preprocessing.
func (b BatchSpec) NeedsSequences() bool {
	for _, t := range b.tasks {
		if t.NeedsSequences() {
			return true
		}
	}
	return false
}

// Signature returns the batch's canonical string form, e.g.
// "wordcount+termvector@k=5".  Equal signatures mean identical batches:
// the daemon's coalescer and result cache key on it.
func (b BatchSpec) Signature() string {
	names := make([]string, len(b.tasks))
	for i, t := range b.tasks {
		names[i] = t.String()
	}
	sig := strings.Join(names, "+")
	if b.k > 0 {
		sig += fmt.Sprintf("@k=%d", b.k)
	}
	return sig
}

// ops materializes the batch's analytics ops.
func (b BatchSpec) ops() ([]analytics.Op, error) {
	ops := make([]analytics.Op, len(b.tasks))
	for i, t := range b.tasks {
		op, err := t.op(b.k)
		if err != nil {
			return nil, err
		}
		ops[i] = op
	}
	return ops, nil
}

// BatchResult holds the results of one fused batch.  Only the fields of the
// tasks that were requested are populated.  TermVectors holds the spec's
// term-vector length (default analytics.DefaultTermVectorK entries per
// document).
type BatchResult struct {
	WordCount           map[string]uint64
	Sort                []TermCount
	TermVectors         [][]TermCount
	InvertedIndex       map[string][]string
	SequenceCount       map[string]uint64
	RankedInvertedIndex map[string][]DocCount
}

// RunBatch executes the given tasks as one fused traversal: the underlying
// engine walks its representation once and feeds every compatible task from
// the same reads, so a batch costs substantially fewer modeled device reads
// than running the tasks sequentially.  Duplicate tasks are computed once.
func (e *Engine) RunBatch(tasks ...Task) (*BatchResult, error) {
	return e.RunSpec(NewBatchSpec(tasks, 0))
}

// RunSpec executes a canonicalized batch on the engine's task path — the
// request-shaping codepath shared with the daemon (which runs the same specs
// through pooled query sessions).
func (e *Engine) RunSpec(spec BatchSpec) (*BatchResult, error) {
	if len(spec.tasks) == 0 {
		return &BatchResult{}, nil
	}
	x, ok := e.inner.(analytics.Executor)
	if !ok {
		return nil, fmt.Errorf("ntadoc: engine does not support batch execution")
	}
	ops, err := spec.ops()
	if err != nil {
		return nil, err
	}
	results, err := x.RunOps(ops)
	if err != nil {
		return nil, err
	}
	return e.convertBatch(spec, results), nil
}

// convertBatch maps the kernel's ID-keyed op results onto the public
// string-keyed BatchResult, slot by slot in the spec's canonical order.
func (e *Engine) convertBatch(spec BatchSpec, results []any) *BatchResult {
	out := &BatchResult{}
	for i, t := range spec.tasks {
		switch t {
		case TaskWordCount:
			out.WordCount = e.convWordCounts(results[i].(map[uint32]uint64))
		case TaskSort:
			out.Sort = e.convTermCounts(results[i].([]analytics.WordFreq))
		case TaskTermVectors:
			out.TermVectors = e.convTermVectors(results[i].([][]analytics.WordFreq))
		case TaskInvertedIndex:
			out.InvertedIndex = e.convInvertedIndex(results[i].(map[uint32][]uint32))
		case TaskSequenceCount:
			out.SequenceCount = e.convSequenceCounts(results[i].(map[analytics.Seq]uint64))
		case TaskRankedInvertedIndex:
			out.RankedInvertedIndex = e.convRankedIndex(results[i].(map[analytics.Seq][]analytics.DocFreq))
		}
	}
	return out
}

// Conversions from internal ID-keyed results to the public string-keyed
// forms, shared by the per-task methods and RunBatch.

func (e *Engine) convWordCounts(counts map[uint32]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(counts))
	for id, c := range counts {
		out[e.a.d.Word(id)] = c
	}
	return out
}

func (e *Engine) convTermCounts(wf []analytics.WordFreq) []TermCount {
	out := make([]TermCount, len(wf))
	for i, w := range wf {
		out[i] = TermCount{Term: e.a.d.Word(w.Word), Count: w.Freq}
	}
	return out
}

func (e *Engine) convTermVectors(tv [][]analytics.WordFreq) [][]TermCount {
	out := make([][]TermCount, len(tv))
	for i, vec := range tv {
		out[i] = e.convTermCounts(vec)
	}
	return out
}

func (e *Engine) convInvertedIndex(inv map[uint32][]uint32) map[string][]string {
	table := e.docNames()
	out := make(map[string][]string, len(inv))
	for id, docs := range inv {
		names := make([]string, len(docs))
		for i, doc := range docs {
			names[i] = table[doc]
		}
		out[e.a.d.Word(id)] = names
	}
	return out
}

func (e *Engine) convSequenceCounts(sc map[analytics.Seq]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(sc))
	for q, c := range sc {
		out[e.seqKey(q)] = c
	}
	return out
}

func (e *Engine) convRankedIndex(rii map[analytics.Seq][]analytics.DocFreq) map[string][]DocCount {
	table := e.docNames()
	out := make(map[string][]DocCount, len(rii))
	for q, postings := range rii {
		row := make([]DocCount, len(postings))
		for i, p := range postings {
			row[i] = DocCount{Doc: table[p.Doc], Count: p.Freq}
		}
		out[e.seqKey(q)] = row
	}
	return out
}

func (e *Engine) seqKey(q analytics.Seq) string {
	words := make([]string, len(q))
	for i, id := range q {
		words[i] = e.a.d.Word(id)
	}
	return strings.Join(words, " ")
}
