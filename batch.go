package ntadoc

import (
	"fmt"
	"strings"

	"github.com/text-analytics/ntadoc/internal/analytics"
)

// Task names one of the six analytics tasks for batch execution.
type Task int

// The analytics tasks, in the paper's order.
const (
	TaskWordCount Task = iota
	TaskSort
	TaskTermVectors
	TaskInvertedIndex
	TaskSequenceCount
	TaskRankedInvertedIndex
)

// AllTasks lists every task in the paper's order.
var AllTasks = []Task{
	TaskWordCount, TaskSort, TaskTermVectors,
	TaskInvertedIndex, TaskSequenceCount, TaskRankedInvertedIndex,
}

// String returns the task's command-line name.
func (t Task) String() string {
	switch t {
	case TaskWordCount:
		return "wordcount"
	case TaskSort:
		return "sort"
	case TaskTermVectors:
		return "termvector"
	case TaskInvertedIndex:
		return "invertedindex"
	case TaskSequenceCount:
		return "seqcount"
	case TaskRankedInvertedIndex:
		return "rankedindex"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// ParseTask resolves a command-line task name.
func ParseTask(s string) (Task, error) {
	for _, t := range AllTasks {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("ntadoc: unknown task %q", s)
}

// NeedsSequences reports whether the task requires sequence preprocessing
// (i.e. it fails on engines built with NoSequences).
func (t Task) NeedsSequences() bool {
	return t == TaskSequenceCount || t == TaskRankedInvertedIndex
}

// op returns the task's registered analytics op with default parameters.
func (t Task) op() (analytics.Op, error) {
	switch t {
	case TaskWordCount:
		return analytics.WordCountOp{}, nil
	case TaskSort:
		return analytics.SortOp{}, nil
	case TaskTermVectors:
		return analytics.TermVectorsOp{K: analytics.DefaultTermVectorK}, nil
	case TaskInvertedIndex:
		return analytics.InvertedIndexOp{}, nil
	case TaskSequenceCount:
		return analytics.SequenceCountOp{}, nil
	case TaskRankedInvertedIndex:
		return analytics.RankedInvertedIndexOp{}, nil
	default:
		return nil, fmt.Errorf("ntadoc: unknown task %d", int(t))
	}
}

// BatchResult holds the results of one fused batch.  Only the fields of the
// tasks that were requested are populated.  TermVectors uses the default
// vector length (analytics.DefaultTermVectorK entries per document).
type BatchResult struct {
	WordCount           map[string]uint64
	Sort                []TermCount
	TermVectors         [][]TermCount
	InvertedIndex       map[string][]string
	SequenceCount       map[string]uint64
	RankedInvertedIndex map[string][]DocCount
}

// RunBatch executes the given tasks as one fused traversal: the underlying
// engine walks its representation once and feeds every compatible task from
// the same reads, so a batch costs substantially fewer modeled device reads
// than running the tasks sequentially.  Duplicate tasks are computed once.
func (e *Engine) RunBatch(tasks ...Task) (*BatchResult, error) {
	out := &BatchResult{}
	if len(tasks) == 0 {
		return out, nil
	}
	x, ok := e.inner.(analytics.Executor)
	if !ok {
		return nil, fmt.Errorf("ntadoc: engine does not support batch execution")
	}
	uniq := make([]Task, 0, len(tasks))
	seen := make(map[Task]bool)
	for _, t := range tasks {
		if !seen[t] {
			seen[t] = true
			uniq = append(uniq, t)
		}
	}
	ops := make([]analytics.Op, len(uniq))
	for i, t := range uniq {
		op, err := t.op()
		if err != nil {
			return nil, err
		}
		ops[i] = op
	}
	results, err := x.RunOps(ops)
	if err != nil {
		return nil, err
	}
	for i, t := range uniq {
		switch t {
		case TaskWordCount:
			out.WordCount = e.convWordCounts(results[i].(map[uint32]uint64))
		case TaskSort:
			out.Sort = e.convTermCounts(results[i].([]analytics.WordFreq))
		case TaskTermVectors:
			out.TermVectors = e.convTermVectors(results[i].([][]analytics.WordFreq))
		case TaskInvertedIndex:
			out.InvertedIndex = e.convInvertedIndex(results[i].(map[uint32][]uint32))
		case TaskSequenceCount:
			out.SequenceCount = e.convSequenceCounts(results[i].(map[analytics.Seq]uint64))
		case TaskRankedInvertedIndex:
			out.RankedInvertedIndex = e.convRankedIndex(results[i].(map[analytics.Seq][]analytics.DocFreq))
		}
	}
	return out, nil
}

// Conversions from internal ID-keyed results to the public string-keyed
// forms, shared by the per-task methods and RunBatch.

func (e *Engine) convWordCounts(counts map[uint32]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(counts))
	for id, c := range counts {
		out[e.a.d.Word(id)] = c
	}
	return out
}

func (e *Engine) convTermCounts(wf []analytics.WordFreq) []TermCount {
	out := make([]TermCount, len(wf))
	for i, w := range wf {
		out[i] = TermCount{Term: e.a.d.Word(w.Word), Count: w.Freq}
	}
	return out
}

func (e *Engine) convTermVectors(tv [][]analytics.WordFreq) [][]TermCount {
	out := make([][]TermCount, len(tv))
	for i, vec := range tv {
		out[i] = e.convTermCounts(vec)
	}
	return out
}

func (e *Engine) convInvertedIndex(inv map[uint32][]uint32) map[string][]string {
	out := make(map[string][]string, len(inv))
	for id, docs := range inv {
		names := make([]string, len(docs))
		for i, doc := range docs {
			names[i] = e.names[doc]
		}
		out[e.a.d.Word(id)] = names
	}
	return out
}

func (e *Engine) convSequenceCounts(sc map[analytics.Seq]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(sc))
	for q, c := range sc {
		out[e.seqKey(q)] = c
	}
	return out
}

func (e *Engine) convRankedIndex(rii map[analytics.Seq][]analytics.DocFreq) map[string][]DocCount {
	out := make(map[string][]DocCount, len(rii))
	for q, postings := range rii {
		row := make([]DocCount, len(postings))
		for i, p := range postings {
			row[i] = DocCount{Doc: e.names[p.Doc], Count: p.Freq}
		}
		out[e.seqKey(q)] = row
	}
	return out
}

func (e *Engine) seqKey(q analytics.Seq) string {
	words := make([]string, len(q))
	for i, id := range q {
		words[i] = e.a.d.Word(id)
	}
	return strings.Join(words, " ")
}
